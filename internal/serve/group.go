package serve

import (
	"fmt"
	"sort"
	"time"

	"durassd/internal/sim"
)

// Group is one shard's replica group: R stores, each on its own domain and
// device, fronted by quorum logic that lives in the gateway domain. A Put
// fans out to every reachable replica and acknowledges at W durable acks —
// so a quorum ack survives the loss of any W-1 replicas, by construction,
// and the ReplicaLoss crashpoint campaign audits exactly that. A Get reads
// one replica (rendezvous-ranked per key so the read load spreads and a
// dead replica moves only its own keys), with a hedged second read fired
// after a deterministic latency threshold.
//
// Every replica RPC carries a virtual-time deadline; the group retries a
// failed operation a bounded number of times with seeded-jitter exponential
// backoff. Per-replica circuit breakers open on consecutive hard failures
// (deadline, power failure, read-only degradation) so a dead replica costs
// one deadline per cooldown instead of one per request. A group that cannot
// reach W sheds writes with typed ErrShardUnavailable and keeps serving
// reads from whatever is alive.
//
// The group is the version authority: versions are assigned here, under
// per-key stripe locks, and shipped to replicas via Store.PutVersion —
// idempotent and monotonic, so a retry of a half-applied quorum attempt
// re-sends the same version and converges instead of forking.
//
// Failure bookkeeping is conservative: any replica that skipped, failed, or
// timed out a write is marked behind for that key until a later success
// (its own late completion, a retried RPC, or catch-up) proves otherwise.
// Reads never route to a replica that is behind on the requested key, which
// keeps monotonic reads through single-replica reads. A rebooted replica
// rejoins by draining its behind set from live peers — a delta catch-up,
// not a full rebuild: its own durable media is trusted (the DuraSSD
// argument) and only writes quorum-acked while it was away are transferred.
//
// All Group state is confined to the front (gateway) domain; replica RPC
// completions are shipped back there, so no locks are needed and every
// transition lands in deterministic virtual-time order.
type Group struct {
	id    int
	front *sim.Domain
	reps  []*replica
	w     int
	cfg   GroupConfig
	rng   *sim.Rand // backoff jitter (front domain only)

	// Per-key write serialization: version assignment and quorum fan-out
	// for one key happen under its stripe, so versions are monotonic.
	stripes []*sim.Resource
	vers    map[uint64]uint64 // group version authority

	hedges       int64
	deadlines    int64
	retries      int64
	unavailable  int64
	catchupKeys  int64
	staleServed  int64
	rebuildScans int64
}

// replica is the front-domain view of one group member.
type replica struct {
	st   *Store
	dom  *sim.Domain
	br   *Breaker
	salt uint64
	// behind maps key -> highest version this replica is known (or assumed)
	// to be missing. Entries are added when a write RPC to the replica
	// skips, fails or times out, and removed when a success at or above the
	// version proves the replica caught up.
	behind     map[uint64]uint64
	catchingUp bool
}

// GroupConfig tunes the replication and failure-handling layer.
type GroupConfig struct {
	// Quorum is the write quorum W (default: majority of the replicas).
	Quorum int
	// CallTimeout is the per-replica RPC deadline (default 8ms).
	CallTimeout time.Duration
	// Retries bounds retried attempts after the first (default 2).
	Retries int
	// RetryBase is the backoff base; attempt k sleeps base<<k plus jitter
	// uniform in [0, base<<k) (default 200µs).
	RetryBase time.Duration
	// HedgeAfter is the hedged-read threshold: a read outstanding this long
	// fires a second read at the next-ranked replica (default 1.2ms).
	HedgeAfter time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-replica circuit
	// breakers (defaults 4 consecutive failures, 15ms cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (c *GroupConfig) defaults(replicas int) {
	if c.Quorum <= 0 {
		c.Quorum = replicas/2 + 1
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 8 * time.Millisecond
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Microsecond
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 1200 * time.Microsecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 15 * time.Millisecond
	}
}

const groupStripes = 64

// NewGroup builds a replica group over the given stores (each already on
// its own domain) fronted from the front domain.
func NewGroup(id int, front *sim.Domain, stores []*Store, cfg GroupConfig) (*Group, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("serve: group %d needs at least one replica", id)
	}
	cfg.defaults(len(stores))
	if cfg.Quorum > len(stores) {
		return nil, fmt.Errorf("serve: group %d quorum %d exceeds %d replicas", id, cfg.Quorum, len(stores))
	}
	g := &Group{
		id:      id,
		front:   front,
		w:       cfg.Quorum,
		cfg:     cfg,
		rng:     sim.NewRand(0x5eed + int64(id)*1_000_003),
		stripes: make([]*sim.Resource, groupStripes),
		vers:    make(map[uint64]uint64),
	}
	for i := range g.stripes {
		g.stripes[i] = sim.NewResource(front.Engine(), 1)
	}
	for i, st := range stores {
		if st.Domain().Cluster() != front.Cluster() {
			return nil, fmt.Errorf("serve: group %d replica %d lives in a different cluster", id, i)
		}
		g.reps = append(g.reps, &replica{
			st:     st,
			dom:    st.Domain(),
			br:     NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			salt:   replicaSalt(i),
			behind: make(map[uint64]uint64),
		})
	}
	return g, nil
}

// Replicas returns the replication factor R.
func (g *Group) Replicas() int { return len(g.reps) }

// Quorum returns the write quorum W.
func (g *Group) Quorum() int { return g.w }

// Replica returns replica ri's store.
func (g *Group) Replica(ri int) *Store { return g.reps[ri].st }

// Breaker returns replica ri's circuit breaker (health inspection).
func (g *Group) Breaker(ri int) *Breaker { return g.reps[ri].br }

// Behind returns the number of keys replica ri is known to be missing.
func (g *Group) Behind(ri int) int { return len(g.reps[ri].behind) }

// Live returns the number of replicas whose breakers are closed.
func (g *Group) Live() int {
	n := 0
	for _, r := range g.reps {
		if !r.br.Open() {
			n++
		}
	}
	return n
}

// BelowQuorum reports whether fewer than W replicas look healthy — the
// degraded state in which writes are shed and cache hits are stale-risk.
func (g *Group) BelowQuorum() bool { return g.Live() < g.w }

// Counters returns the group's cumulative robustness tallies.
func (g *Group) Counters() (hedges, deadlines, retries, unavailable, catchup int64) {
	return g.hedges, g.deadlines, g.retries, g.unavailable, g.catchupKeys
}

// BreakerOpens sums closed->open transitions across the group's replicas.
func (g *Group) BreakerOpens() int64 {
	var n int64
	for _, r := range g.reps {
		n += r.br.Opens()
	}
	return n
}

// replicaSalt derives replica ri's rendezvous salt (a pure function of the
// index, so tests and groups agree).
func replicaSalt(ri int) uint64 {
	return mix64(uint64(ri+1) * 0xbf58476d1ce4e5b9)
}

// RendezvousOrder ranks replicas 0..n-1 for a read of key by rendezvous
// (highest-random-weight) hashing over the replicas alive reports as up.
// The defining property — the reason replica death never reshuffles healthy
// assignments — is minimal movement: excluding one replica changes the top
// choice only for keys that preferred the excluded replica.
func RendezvousOrder(key uint64, n int, alive func(int) bool) []int {
	type ranked struct {
		w  uint64
		ri int
	}
	var rs []ranked
	h := mix64(key)
	for ri := 0; ri < n; ri++ {
		if alive != nil && !alive(ri) {
			continue
		}
		rs = append(rs, ranked{w: mix64(h ^ replicaSalt(ri)), ri: ri})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].w != rs[j].w {
			return rs[i].w > rs[j].w
		}
		return rs[i].ri < rs[j].ri
	})
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.ri
	}
	return out
}

// readCandidates ranks the group's replicas for a read of key, excluding
// replicas known to be behind on that key (a behind replica would serve a
// stale version; consistency wins over one more read target).
func (g *Group) readCandidates(key uint64) []int {
	return RendezvousOrder(key, len(g.reps), func(ri int) bool {
		rep := g.reps[ri]
		_, behind := rep.behind[key]
		return !behind
	})
}

// backoff returns the seeded-jitter exponential backoff for retry attempt k.
func (g *Group) backoff(attempt int) time.Duration {
	base := g.cfg.RetryBase << uint(attempt)
	return base + time.Duration(g.rng.Int63n(int64(base)))
}

// callState is the front-domain settlement flag of one replica RPC: the
// deadline timer and the real completion race to settle it, and whichever
// loses only updates replica health.
type callState struct{ settled bool }

// finishPut records the outcome of a write RPC on replica health and
// behind-tracking. It runs for every outcome, including completions that
// arrive after their deadline already fired — a late success still proves
// the replica has the write.
func (g *Group) finishPut(ri int, key, ver uint64, err error) {
	rep := g.reps[ri]
	if err == nil {
		rep.br.Success()
		if bv, ok := rep.behind[key]; ok && bv <= ver {
			delete(rep.behind, key)
		}
		return
	}
	rep.br.Failure(g.front.Now())
	if rep.behind[key] < ver {
		rep.behind[key] = ver
	}
}

// putRPC ships PutVersion(key, ver) to replica ri with a deadline. onDone
// runs exactly once in the front domain: with nil on a durable ack, with
// ErrDeadlineExceeded if the deadline fires first, or with the replica's
// error. Health and behind-tracking are updated on every outcome, settled
// or late.
func (g *Group) putRPC(ri int, key, ver uint64, onDone func(err error)) {
	rep := g.reps[ri]
	st, dst, front := rep.st, rep.dom, g.front
	cs := &callState{}
	tm := front.Engine().NewTimer(func() {
		if cs.settled {
			return
		}
		cs.settled = true
		g.deadlines++
		g.finishPut(ri, key, ver, ErrDeadlineExceeded)
		onDone(ErrDeadlineExceeded)
	})
	tm.Reset(g.cfg.CallTimeout)
	front.Send(dst, func() {
		dst.Go("serve/rput", func(q *sim.Proc) {
			err := st.PutVersion(q, key, ver)
			dst.Send(front, func() {
				if cs.settled {
					g.finishPut(ri, key, ver, err) // late completion: heal or confirm
					return
				}
				cs.settled = true
				tm.Stop()
				g.finishPut(ri, key, ver, err)
				onDone(err)
			})
		})
	})
}

// getRPC ships a read of key to replica ri with a deadline; onDone runs
// exactly once in the front domain.
func (g *Group) getRPC(ri int, key uint64, onDone func(ver uint64, found bool, err error)) {
	rep := g.reps[ri]
	st, dst, front := rep.st, rep.dom, g.front
	cs := &callState{}
	tm := front.Engine().NewTimer(func() {
		if cs.settled {
			return
		}
		cs.settled = true
		g.deadlines++
		rep.br.Failure(front.Now())
		onDone(0, false, ErrDeadlineExceeded)
	})
	tm.Reset(g.cfg.CallTimeout)
	front.Send(dst, func() {
		dst.Go("serve/rget", func(q *sim.Proc) {
			ver, found, err := st.Get(q, key)
			dst.Send(front, func() {
				if err == nil {
					rep.br.Success()
				} else {
					rep.br.Failure(front.Now())
				}
				if cs.settled {
					return
				}
				cs.settled = true
				tm.Stop()
				onDone(ver, found, err)
			})
		})
	})
}

// Put durably writes the next version of key at quorum and returns it. A
// nil error means W replicas acknowledged the version as durable — the
// group's commit ack, the thing the ReplicaLoss campaign audits. Attempts
// that miss quorum are retried with backoff (a half-applied attempt re-sends
// the same version, so retries converge); when the group cannot reach W the
// write is shed with ErrShardUnavailable.
func (g *Group) Put(p *sim.Proc, key uint64) (uint64, error) {
	lock := g.stripes[mix64(key)%groupStripes]
	lock.Acquire(p, 1)
	defer lock.Release(1)
	// Version advances at assignment, not at success: a failed attempt must
	// never share a version with the next logical write, or the idempotent
	// replica-side dedupe would eat the newer one.
	ver := g.vers[key] + 1
	g.vers[key] = ver
	for attempt := 0; ; attempt++ {
		err := g.putQuorum(p, key, ver)
		if err == nil {
			return ver, nil
		}
		if attempt >= g.cfg.Retries {
			return 0, fmt.Errorf("serve: group %d put key %d: %w", g.id, key, err)
		}
		g.retries++
		p.Sleep(g.backoff(attempt))
	}
}

// quorumState tallies one fan-out attempt in the front domain.
type quorumState struct {
	acks, fails int
	firstErr    error
}

// putQuorum runs one fan-out attempt: launch a write RPC at every replica
// whose breaker admits it, count skipped replicas as immediate failures,
// and wait until W acks arrive or quorum becomes impossible.
func (g *Group) putQuorum(p *sim.Proc, key, ver uint64) error {
	now := p.Now()
	wake := sim.NewQueue(g.front.Engine())
	qs := &quorumState{}
	for ri := range g.reps {
		rep := g.reps[ri]
		if !rep.br.Allow(now) {
			// Skipped: the replica is presumed down and will need this write.
			if rep.behind[key] < ver {
				rep.behind[key] = ver
			}
			qs.fails++
			continue
		}
		g.putRPC(ri, key, ver, func(err error) {
			if err == nil {
				qs.acks++
			} else {
				qs.fails++
				if qs.firstErr == nil {
					qs.firstErr = err
				}
			}
			wake.WakeAll()
		})
	}
	total := len(g.reps)
	for qs.acks < g.w && qs.fails <= total-g.w {
		wake.Wait(p)
	}
	if qs.acks >= g.w {
		return nil
	}
	g.unavailable++
	if qs.firstErr != nil {
		return fmt.Errorf("%w: %d/%d acks: %w", ErrShardUnavailable, qs.acks, g.w, qs.firstErr)
	}
	return fmt.Errorf("%w: %d/%d acks, all replicas skipped", ErrShardUnavailable, qs.acks, g.w)
}

// readState tallies one read attempt in the front domain.
type readState struct {
	done     bool
	ver      uint64
	found    bool
	fails    int
	firstErr error
}

// Get reads key from the group: the rendezvous-preferred replica first,
// a hedged second read if the first is still outstanding after HedgeAfter,
// and sequential failover through the remaining candidates on failure.
// Exhausted attempts are retried with backoff; a group with no replica able
// to serve the key returns ErrShardUnavailable.
func (g *Group) Get(p *sim.Proc, key uint64) (uint64, bool, error) {
	for attempt := 0; ; attempt++ {
		ver, found, err := g.getOnce(p, key)
		if err == nil {
			return ver, found, nil
		}
		if attempt >= g.cfg.Retries {
			return 0, false, fmt.Errorf("serve: group %d get key %d: %w", g.id, key, err)
		}
		g.retries++
		p.Sleep(g.backoff(attempt))
	}
}

// getOnce runs one read attempt with hedging and failover.
func (g *Group) getOnce(p *sim.Proc, key uint64) (uint64, bool, error) {
	order := g.readCandidates(key)
	wake := sim.NewQueue(g.front.Engine())
	rs := &readState{}
	next, launched := 0, 0
	launchNext := func() bool {
		for next < len(order) {
			ri := order[next]
			next++
			if !g.reps[ri].br.Allow(g.front.Now()) {
				continue
			}
			launched++
			g.getRPC(ri, key, func(ver uint64, found bool, err error) {
				if err == nil {
					if !rs.done {
						rs.done = true
						rs.ver, rs.found = ver, found
					}
				} else {
					rs.fails++
					if rs.firstErr == nil {
						rs.firstErr = err
					}
				}
				wake.WakeAll()
			})
			return true
		}
		return false
	}
	if !launchNext() {
		g.unavailable++
		return 0, false, fmt.Errorf("%w: no replica can serve the read", ErrShardUnavailable)
	}
	hedge := g.front.Engine().NewTimer(func() {
		if rs.done {
			return
		}
		if launchNext() {
			g.hedges++
		}
	})
	hedge.Reset(g.cfg.HedgeAfter)
	for !rs.done {
		if rs.fails == launched && !launchNext() {
			break // every candidate tried and failed
		}
		wake.Wait(p)
	}
	hedge.Stop()
	if rs.done {
		return rs.ver, rs.found, nil
	}
	g.unavailable++
	if rs.firstErr != nil {
		return 0, false, fmt.Errorf("%w: %w", ErrShardUnavailable, rs.firstErr)
	}
	return 0, false, fmt.Errorf("%w: no replica answered the read", ErrShardUnavailable)
}

// callPut runs one write RPC as a parking Domain.Call, with no deadline.
// Catch-up uses it: a replica fresh out of reboot sits far ahead of the
// front on its own virtual clock (recovery time elapsed only there), so a
// front-clock deadline would misfire on skew, not slowness — and a dead
// target fails the call fast anyway. Health and behind bookkeeping are
// maintained exactly as on the deadline path.
func (g *Group) callPut(p *sim.Proc, ri int, key, ver uint64) error {
	rep := g.reps[ri]
	st := rep.st
	var err error
	g.front.Call(p, rep.dom, "serve/catchup-put", func(q *sim.Proc) {
		err = st.PutVersion(q, key, ver)
	})
	g.finishPut(ri, key, ver, err)
	return err
}

// callGet runs one read RPC as a parking Domain.Call (see callPut for why
// catch-up traffic carries no deadline).
func (g *Group) callGet(p *sim.Proc, ri int, key uint64) (uint64, bool, error) {
	rep := g.reps[ri]
	st := rep.st
	var (
		ver   uint64
		found bool
		err   error
	)
	g.front.Call(p, rep.dom, "serve/catchup-get", func(q *sim.Proc) {
		ver, found, err = st.Get(q, key)
	})
	if err == nil {
		rep.br.Success()
	} else {
		rep.br.Failure(p.Now())
	}
	return ver, found, err
}

// ReplicaRebooted is the rejoin notification: replica ri's node came back
// (its Reboot completed with the given error). On success a catch-up
// process starts in the front domain; on failure the breaker stays open.
// Must be called from the front domain's execution.
func (g *Group) ReplicaRebooted(ri int, rebootErr error) {
	if rebootErr != nil {
		return
	}
	g.front.Go(fmt.Sprintf("serve/catchup-%d-%d", g.id, ri), func(p *sim.Proc) {
		g.CatchUp(p, ri)
	})
}

// CatchUp drains replica ri's behind set from live peers: for each key the
// replica missed, the current version is read from the best peer holding it
// and re-written to ri at that version. This is the FaCE-style rejoin — a
// delta transfer of what was quorum-acked while the replica was away, not a
// full rebuild, because the replica's own durable media is trusted for
// everything it acked before going down. Keys whose transfer fails stay in
// the behind set (reads keep avoiding them) for the next pass or the next
// rejoin. Returns the number of keys transferred.
func (g *Group) CatchUp(p *sim.Proc, ri int) int {
	rep := g.reps[ri]
	if rep.catchingUp {
		return 0
	}
	rep.catchingUp = true
	defer func() { rep.catchingUp = false }()
	transferred := 0
	const maxPasses = 8
	for pass := 0; pass < maxPasses && len(rep.behind) > 0; pass++ {
		// Snapshot in sorted key order: the transfer schedule must never
		// depend on map iteration order.
		keys := make([]uint64, 0, len(rep.behind))
		for k := range rep.behind {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		progress := false
		for _, k := range keys {
			target, ok := rep.behind[k]
			if !ok {
				continue // healed meanwhile by a late completion or a new write
			}
			ver, ok2 := g.readFromPeer(p, ri, k)
			if !ok2 {
				continue // no peer could serve it this pass
			}
			if ver < target {
				// The peer is fresher than its behind-marking but older than
				// the quorum-acked version we recorded; write what we know.
				ver = target
			}
			if err := g.callPut(p, ri, k, ver); err != nil {
				continue // stays behind; retried next pass
			}
			transferred++
			g.catchupKeys++
			progress = true
		}
		if !progress {
			break
		}
	}
	return transferred
}

// readFromPeer reads key's current version from the best live peer of ri
// that is not itself behind on the key.
func (g *Group) readFromPeer(p *sim.Proc, ri int, key uint64) (uint64, bool) {
	for _, pi := range g.readCandidates(key) {
		if pi == ri {
			continue
		}
		if !g.reps[pi].br.Allow(p.Now()) {
			continue
		}
		ver, found, err := g.callGet(p, pi, key)
		if err == nil && found {
			return ver, true
		}
	}
	return 0, false
}
