package serve

// Sketch is a count-min sketch over uint64 keys: the frequency oracle
// behind the read cache's TinyLFU admission policy. Increment never touches
// more than depth counters, Estimate returns the minimum over them, and the
// structural guarantee the cache relies on is overestimate-only: the
// estimate is never below the true increment count (collisions can only
// inflate a counter, never deflate it). Aging (Halve) trades that bound for
// recency, exactly as TinyLFU prescribes: after a halving the estimate may
// undercount old traffic but still never undercounts traffic seen since.
//
// Counters are 4-bit saturating nibbles packed 16 to a uint64 — frequency
// beyond 15 carries no extra admission signal, and the packing keeps even a
// large sketch a few kilobytes, matching the TinyLFU paper's layout.
type Sketch struct {
	rows  [sketchDepth][]uint64
	mask  uint64 // counters per row - 1 (power of two)
	adds  int    // increments since the last halving
	limit int    // increments that trigger an automatic halving (0 = never)
}

const sketchDepth = 4

// NewSketch sizes a sketch for the given number of distinct hot keys. The
// counter count per row is the next power of two >= 2*capacity, and the
// sketch halves itself every 10*capacity increments (the TinyLFU sample
// window) so stale traffic decays.
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	n := uint64(64)
	for n < uint64(capacity)*2 {
		n *= 2
	}
	s := &Sketch{mask: n - 1, limit: capacity * 10}
	for i := range s.rows {
		s.rows[i] = make([]uint64, n/16)
	}
	return s
}

// counterIndex returns the (word, shift) address of row i's counter for key.
func (s *Sketch) counterIndex(i int, key uint64) (word int, shift uint) {
	h := mix64(key ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	c := h & s.mask
	return int(c / 16), uint(c % 16 * 4)
}

// Increment bumps the key's counters (saturating at 15). When the sample
// window fills, every counter in the sketch is halved.
func (s *Sketch) Increment(key uint64) {
	for i := 0; i < sketchDepth; i++ {
		w, sh := s.counterIndex(i, key)
		if v := (s.rows[i][w] >> sh) & 0xf; v < 15 {
			s.rows[i][w] += 1 << sh
		}
	}
	s.adds++
	if s.limit > 0 && s.adds >= s.limit {
		s.Halve()
	}
}

// Estimate returns the key's frequency estimate: the minimum over the
// key's counters, never less than the true count seen since the last
// halving (and at most 15).
func (s *Sketch) Estimate(key uint64) int {
	est := uint64(15)
	for i := 0; i < sketchDepth; i++ {
		w, sh := s.counterIndex(i, key)
		if v := (s.rows[i][w] >> sh) & 0xf; v < est {
			est = v
		}
	}
	return int(est)
}

// Halve ages the sketch: every 4-bit counter is divided by two. The
// overestimate-only bound restarts from this instant.
func (s *Sketch) Halve() {
	for i := range s.rows {
		for w := range s.rows[i] {
			// Shift every nibble right by one; the mask clears the bit
			// that would otherwise leak in from the neighbouring counter.
			s.rows[i][w] = (s.rows[i][w] >> 1) & 0x7777777777777777
		}
	}
	s.adds = 0
}
