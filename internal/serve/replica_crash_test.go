package serve

import (
	"testing"
	"time"
)

// The replication claim as a property: a write acked at quorum W=2 over R=3
// DuraSSD replicas survives a crash of any W-1=1 replicas at any cut
// instant — readable from the survivors before the victim returns, and
// converged on every replica after reboot plus delta catch-up.
func TestReplicaLossQuorumAckedSurvivesAnyVictim(t *testing.T) {
	cuts := []time.Duration{
		1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	}
	for victim := 0; victim < 3; victim++ {
		for _, cut := range cuts {
			v, err := RunReplicaLoss(ReplicaSpec{
				Groups: 2, Replicas: 3, Quorum: 2,
				Updates: 120, Keys: 64, Seed: 7,
				CutAfter: cut, CutReplica: victim,
			}, ReplicaOptions{})
			if err != nil {
				t.Fatalf("victim %d cut %v: %v", victim, cut, err)
			}
			if v.AckedCommits == 0 {
				t.Fatalf("victim %d cut %v: no acked commits, nothing audited", victim, cut)
			}
			if !v.Safe() {
				t.Errorf("victim %d cut %v: groupLost=%d lost=%d torn=%d err=%v — quorum-acked writes must survive any single replica loss",
					victim, cut, v.GroupLost, v.Lost, v.Torn, v.Err)
			}
			if v.BehindAfter != 0 {
				t.Errorf("victim %d cut %v: %d keys still behind after catch-up", victim, cut, v.BehindAfter)
			}
		}
	}
}

// The rebooted replica's rejoin is a delta transfer, not a full rebuild:
// strictly fewer keys move than the replica's resident key count, and the
// group serves throughout.
func TestReplicaLossCatchupIsDelta(t *testing.T) {
	v, err := RunReplicaLoss(ReplicaSpec{
		Groups: 2, Replicas: 3, Quorum: 2,
		Updates: 160, Keys: 96, Seed: 11,
		CutAfter: 2 * time.Millisecond, CutReplica: 1,
	}, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe() {
		t.Fatalf("unsafe: %+v", v)
	}
	if v.CatchupKeys == 0 {
		t.Fatalf("catch-up transferred nothing; the victim missed writes during its outage")
	}
	if v.CatchupKeys >= v.TotalKeys {
		t.Errorf("catch-up moved %d keys of a %d-key space — that is a rebuild, not a delta",
			v.CatchupKeys, v.TotalKeys)
	}
}

// Losing a second replica mid-catch-up still loses nothing: acked writes
// live on at least W=2 durable replicas, so even with the rejoining victim
// and one donor down, the data survives and converges once both return.
func TestReplicaLossSecondCutDuringCatchup(t *testing.T) {
	v, err := RunReplicaLoss(ReplicaSpec{
		Groups: 2, Replicas: 3, Quorum: 2,
		Updates: 160, Keys: 96, Seed: 13,
		CutAfter: 2 * time.Millisecond, CutReplica: 0,
		CutPeerDuringCatchup: true, PeerCut: 1,
	}, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.AckedCommits == 0 {
		t.Fatal("no acked commits")
	}
	if !v.Safe() {
		t.Errorf("unsafe under double fault: groupLost=%d lost=%d torn=%d err=%v",
			v.GroupLost, v.Lost, v.Torn, v.Err)
	}
	if v.BehindAfter != 0 {
		t.Errorf("%d keys still behind after both replicas recovered", v.BehindAfter)
	}
}

// The control: R=1 over a volatile-cache SSD-A. No quorum to hide behind,
// no durable cache — acked writes that had not drained are gone after the
// crash, which is exactly the contrast the replication layer (and the
// paper's durable cache) exists to close.
func TestReplicaLossVolatileControlLosesAckedWrites(t *testing.T) {
	v, err := RunReplicaLoss(ReplicaSpec{
		Groups: 2, Replicas: 1, Quorum: 1, Volatile: true,
		Updates: 160, Keys: 96, Seed: 7,
		CutAfter: 2 * time.Millisecond,
	}, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.AckedCommits == 0 {
		t.Fatal("no acked commits before the cut")
	}
	if v.Lost == 0 {
		t.Errorf("volatile R=1 control lost nothing (%d acked keys) — the control must demonstrate loss",
			v.AckedKeys)
	}
}

// The probe configuration (no fault at all) is trivially safe — the rig
// itself must not manufacture loss.
func TestReplicaLossProbeIsClean(t *testing.T) {
	v, err := RunReplicaLoss(ReplicaSpec{
		Groups: 2, Replicas: 3, Quorum: 2, Updates: 120, Keys: 64, Seed: 3,
	}, ReplicaOptions{NoCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe() || v.GroupLost != 0 || v.Lost != 0 {
		t.Fatalf("probe run unsafe: %+v", v)
	}
	if v.Unavailable != 0 {
		t.Errorf("probe run shed %d writes as unavailable with all replicas healthy", v.Unavailable)
	}
}
