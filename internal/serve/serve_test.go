package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"durassd/internal/sim"
	"durassd/internal/ssd"
)

const testLatency = 100 * time.Microsecond

// openTestStore builds one real-bytes store over a fresh DuraSSD on its own
// cluster domain.
func openTestStore(t *testing.T, keys []uint64, barrier bool) (*sim.Cluster, *Store) {
	t.Helper()
	cluster := sim.NewCluster(1, testLatency, 1)
	t.Cleanup(cluster.Close)
	dom := cluster.Domain(0)
	dev, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dom, dev, keys, StoreConfig{Barrier: barrier, RealBytes: true})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, st
}

// TestStoreRoundtrip: versions increment per key, reads see the latest
// acknowledged version, keys in the shard's key space exist from the start
// (at version 0, the preloaded image), and keys outside it are a definitive
// not-found — the contract the bloom filter's false positives lean on.
func TestStoreRoundtrip(t *testing.T) {
	cluster, st := openTestStore(t, []uint64{10, 20, 30}, false)
	st.Domain().Go("roundtrip", func(p *sim.Proc) {
		for want := uint64(1); want <= 3; want++ {
			ver, err := st.Put(p, 20)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if ver != want {
				t.Errorf("Put version = %d, want %d", ver, want)
			}
		}
		if ver, found, err := st.Get(p, 20); err != nil || !found || ver != 3 {
			t.Errorf("Get(20) = (%d, %t, %v), want (3, true, nil)", ver, found, err)
		}
		if ver, found, err := st.Get(p, 10); err != nil || !found || ver != 0 {
			t.Errorf("Get(10) never written = (%d, %t, %v), want (0, true, nil)", ver, found, err)
		}
		if _, found, err := st.Get(p, 999); err != nil || found {
			t.Errorf("Get(unknown) = (found=%t, err=%v), want (false, nil)", found, err)
		}
	})
	cluster.Run()
}

// TestStoreGroupCommit: concurrent writers share fsyncs — the leader's
// Fdatasync covers every write that landed before it started — and every
// acknowledged version is durable on the device afterwards. Barriers are ON
// here so the fsync costs a real device flush: that is the configuration
// where batching matters (with barriers off the fsync is a 3µs no-op and
// there is nothing to amortize).
func TestStoreGroupCommit(t *testing.T) {
	const writers, rounds = 8, 6
	keys := make([]uint64, writers)
	for i := range keys {
		keys[i] = uint64(100 + i)
	}
	cluster, st := openTestStore(t, keys, true)
	acked := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		w := w
		st.Domain().Go(fmt.Sprintf("writer-%d", w), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				ver, err := st.Put(p, keys[w])
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w] = ver
			}
		})
	}
	cluster.Run()
	puts, _, syncs := st.Counters()
	if puts != writers*rounds {
		t.Fatalf("puts = %d, want %d", puts, writers*rounds)
	}
	if syncs >= puts {
		t.Errorf("group commit never batched: %d syncs for %d puts", syncs, puts)
	}
	if syncs == 0 {
		t.Error("no syncs at all: acks were returned without durability")
	}
	st.Domain().Go("audit", func(p *sim.Proc) {
		for w := 0; w < writers; w++ {
			got, ok, err := st.CrashRead(p, keys[w])
			if err != nil || !ok || got < acked[w] {
				t.Errorf("writer %d: durable version (%d, %t, %v), acked %d", w, got, ok, err, acked[w])
			}
		}
	})
	cluster.Run()
}

// buildTestServer assembles a 2-shard serving box in timing mode and returns
// the cluster, server, and the partitioned key sets.
func buildTestServer(t *testing.T, keys []uint64, cfg Config) (*sim.Cluster, *Server) {
	t.Helper()
	const shards = 2
	cluster := sim.NewCluster(shards+1, testLatency, 1)
	t.Cleanup(cluster.Close)
	front := cluster.Domain(0)
	ring := NewRing(shards)
	parts := PartitionKeys(ring, keys)
	stores := make([]*Store, shards)
	for i := range stores {
		dom := cluster.Domain(i + 1)
		dev, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
		if err != nil {
			t.Fatal(err)
		}
		stores[i], err = OpenStore(dom, dev, parts[i], StoreConfig{Barrier: false})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(front, stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.BuildFilters(parts)
	return cluster, srv
}

// TestServerGatewayContract walks the full request paths: a negative lookup
// answered by the bloom filter without shard dispatch, a write acknowledged
// through the gateway, a read served by the shard, and the repeat read
// served by the host cache.
func TestServerGatewayContract(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5}
	cluster, srv := buildTestServer(t, keys, Config{})
	acct := NewTenantAccount("t0", 1_000_000, 64)
	cluster.Domain(0).Go("contract", func(p *sim.Proc) {
		if _, err := srv.Get(p, acct, 404); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(absent) = %v, want ErrNotFound", err)
		}
		if acct.BloomSkip != 1 {
			t.Errorf("BloomSkip = %d, want 1: the filter should answer absent keys", acct.BloomSkip)
		}
		sh := srv.ShardFor(3)
		if _, gets0, _ := srv.Shard(sh).Counters(); gets0 != 0 {
			t.Fatalf("shard %d saw %d gets before any dispatch", sh, gets0)
		}
		ver, err := srv.Put(p, acct, 3)
		if err != nil || ver != 1 {
			t.Fatalf("Put = (%d, %v), want (1, nil)", ver, err)
		}
		if got, err := srv.Get(p, acct, 3); err != nil || got != ver {
			t.Fatalf("Get after Put = (%d, %v), want (%d, nil)", got, err, ver)
		}
		// The first read dispatched to the shard and admitted the value into
		// the host cache; the repeat read must be served from the cache.
		if _, gets, _ := srv.Shard(sh).Counters(); gets != 1 {
			t.Errorf("shard gets = %d after first read, want 1", gets)
		}
		if got, err := srv.Get(p, acct, 3); err != nil || got != ver {
			t.Fatalf("repeat Get = (%d, %v), want (%d, nil)", got, err, ver)
		}
		if _, gets, _ := srv.Shard(sh).Counters(); gets != 1 {
			t.Errorf("shard gets = %d after repeat read, want 1: should have hit the host cache", gets)
		}
		if acct.CacheHits == 0 {
			t.Error("cache hit not accounted to the tenant")
		}
		if acct.Ops == 0 || acct.Shed != 0 {
			t.Errorf("account ops=%d shed=%d, want ops>0 shed=0", acct.Ops, acct.Shed)
		}
	})
	cluster.Run()
}

// TestServerOverloadSheds: with per-shard admission squeezed to one slot and
// a one-deep queue, a stampede of writers must see typed ErrOverloaded, the
// per-shard shed counters must account for every rejection, and the box
// must still answer the surviving requests.
func TestServerOverloadSheds(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	cluster, srv := buildTestServer(t, keys, Config{Concurrency: 1, QueueDepth: 1})
	acct := NewTenantAccount("stampede", 1_000_000, 1024)
	const clients, opsPer = 16, 10
	var served int64
	for c := 0; c < clients; c++ {
		c := c
		rng := sim.NewRand(int64(c) + 1)
		cluster.Domain(0).Go(fmt.Sprintf("client-%d", c), func(p *sim.Proc) {
			for i := 0; i < opsPer; i++ {
				_, err := srv.Put(p, acct, keys[rng.Intn(len(keys))])
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrOverloaded):
				default:
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		})
	}
	cluster.Run()
	var shed int64
	for i := 0; i < srv.Shards(); i++ {
		shed += srv.ShedCount(i)
	}
	if shed == 0 {
		t.Fatal("no request was shed under a 16-client stampede with 1-deep queues")
	}
	if acct.Shed != shed {
		t.Errorf("tenant shed %d != per-shard total %d", acct.Shed, shed)
	}
	if served == 0 {
		t.Fatal("overload shed everything: no request was served")
	}
	if served+shed != clients*opsPer {
		t.Errorf("served %d + shed %d != issued %d", served, shed, clients*opsPer)
	}
}
