package serve

import "errors"

// The serving layer's typed error taxonomy. Every failure a caller can act
// on is one of these sentinels, and every layer that adds context wraps
// with %w, so errors.Is works end to end — from a replica RPC deep inside a
// group, through the gateway, to a tenant client deciding whether to retry.
//
// The retry contract:
//
//   - ErrOverloaded: admission backpressure. Transient by design; retry
//     after a backoff (the scenario clients do, with seeded jitter).
//   - ErrDeadlineExceeded: a replica RPC blew its deadline. The group's own
//     bounded retry/hedging machinery consumes this internally; when it
//     escapes to a caller the whole operation timed out.
//   - ErrShardUnavailable: the shard's replica group cannot currently reach
//     its write quorum (or no replica can serve a read). Writes are shed;
//     reads may fall back to the gateway cache, flagged as stale-risk.
//   - ErrNotFound: a definitive negative answer, never worth a retry.
var (
	ErrOverloaded       = errors.New("serve: shard overloaded, request shed")
	ErrNotFound         = errors.New("serve: key not found")
	ErrDeadlineExceeded = errors.New("serve: replica call deadline exceeded")
	ErrShardUnavailable = errors.New("serve: shard replica group below quorum")
)
