package serve

import (
	"time"

	"durassd/internal/stats"
)

// TokenBucket is a GCRA rate limiter (the "virtual scheduler" formulation
// of the leaky bucket) in pure integer time.Duration arithmetic, so it is
// deterministic across runs and platforms — no floating point, no wall
// clock, only the virtual now the caller passes in.
//
// The sustained-rate guarantee the property tests pin down: over any
// interval the number of conforming admissions is at most
// burst + interval/T, where T is the emission interval (1s / rate). A
// caller that always sleeps the returned wait before proceeding can never
// exceed its configured rate.
type TokenBucket struct {
	interval time.Duration // T: virtual time consumed per admission
	tau      time.Duration // burst tolerance: (burst-1)*T
	tat      time.Duration // theoretical arrival time of the next admission
}

// NewTokenBucket builds a limiter admitting ratePerSec requests per second
// of virtual time with the given burst size (minimum 1 each).
func NewTokenBucket(ratePerSec, burst int) *TokenBucket {
	if ratePerSec < 1 {
		ratePerSec = 1
	}
	if burst < 1 {
		burst = 1
	}
	t := time.Second / time.Duration(ratePerSec)
	if t < 1 {
		t = 1
	}
	return &TokenBucket{interval: t, tau: time.Duration(burst-1) * t}
}

// Take reserves one admission slot at virtual time now and returns how long
// the caller must wait before proceeding (0 = conforming immediately).
// Slots are granted in call order, so a queue of callers drains at exactly
// the configured rate once the burst allowance is spent.
func (tb *TokenBucket) Take(now time.Duration) (wait time.Duration) {
	if now > tb.tat {
		tb.tat = now // idle credit never accumulates beyond the burst
	}
	if conformsAt := tb.tat - tb.tau; now < conformsAt {
		wait = conformsAt - now
	}
	tb.tat += tb.interval
	return wait
}

// Rate returns the sustained admissions-per-second the bucket enforces.
func (tb *TokenBucket) Rate() float64 {
	return float64(time.Second) / float64(tb.interval)
}

// TenantAccount is the per-tenant QoS ledger: the token bucket enforcing
// the tenant's rate and the latency/outcome tallies the report is built
// from. It lives in the gateway domain and is only touched by that domain's
// processes, so no locking is needed.
type TenantAccount struct {
	Name   string
	Bucket *TokenBucket

	Reads     stats.Hist // end-to-end latency of successful reads
	Writes    stats.Hist // end-to-end latency of successful writes
	Ops       int64      // successful operations
	Shed      int64      // rejected with ErrOverloaded (queue full)
	Throttled int64      // operations delayed by the token bucket
	ThrottleT time.Duration
	CacheHits int64 // reads answered from the gateway cache
	BloomSkip int64 // reads answered "absent" by the negative-lookup filter

	Retried     int64 // client-side retries after ErrOverloaded (backoff slept)
	StaleReads  int64 // cache hits served while the owning group was below quorum
	Unavailable int64 // operations refused with ErrShardUnavailable
}

// NewTenantAccount creates the ledger for one tenant with the given rate
// limit (ops per second of virtual time) and burst.
func NewTenantAccount(name string, ratePerSec, burst int) *TenantAccount {
	return &TenantAccount{Name: name, Bucket: NewTokenBucket(ratePerSec, burst)}
}
