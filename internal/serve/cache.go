package serve

// Cache is the gateway's host-side read cache: an LRU keyed by document id
// with TinyLFU admission. Every lookup (hit or miss) feeds the count-min
// sketch; on a miss the fetched entry is admitted only if its estimated
// frequency beats the LRU victim it would evict, so one-shot scan traffic
// cannot wash out the resident hot set — the classic TinyLFU argument.
//
// The cache stores the document's current version (the serving layer's
// value surface); a write-through update keeps a resident entry coherent
// with the shard, so reads after writes never serve stale versions.
//
// The cache lives in the front (gateway) domain and is only touched by
// processes running there, so it needs no locking and its state evolves in
// deterministic virtual-time order.
type Cache struct {
	cap     int
	entries map[uint64]*centry
	sketch  *Sketch
	head    *centry // most recently used
	tail    *centry // least recently used (the admission victim)

	hits      int64
	misses    int64
	admits    int64
	rejects   int64
	evictions int64
}

type centry struct {
	key        uint64
	version    uint64
	prev, next *centry
}

// NewCache creates a cache holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[uint64]*centry, capacity),
		sketch:  NewSketch(capacity),
	}
}

// Get looks the key up, recording the access in the frequency sketch.
func (c *Cache) Get(key uint64) (version uint64, ok bool) {
	c.sketch.Increment(key)
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.moveToFront(e)
	return e.version, true
}

// Admit offers a freshly fetched (key, version) to the cache. While there
// is spare capacity everything is admitted; at capacity the TinyLFU filter
// compares the candidate's sketch estimate against the LRU victim's and
// only admits winners (ties lose: churn without evidence is not worth an
// eviction).
func (c *Cache) Admit(key uint64, version uint64) bool {
	if e, ok := c.entries[key]; ok {
		// Already resident (a racing fetch landed first): refresh in place.
		// Versions only move forward — a slow fetch that completed after a
		// newer one must not roll the entry back.
		if version > e.version {
			e.version = version
		}
		c.moveToFront(e)
		return true
	}
	if len(c.entries) >= c.cap {
		victim := c.tail
		if c.sketch.Estimate(key) <= c.sketch.Estimate(victim.key) {
			c.rejects++
			return false
		}
		c.remove(victim)
		c.evictions++
	}
	e := &centry{key: key, version: version}
	c.entries[key] = e
	c.pushFront(e)
	c.admits++
	return true
}

// Update write-throughs a resident entry to a new version; absent keys are
// left absent (a write is not evidence of read popularity). Updates are
// monotonic: concurrent writes to one key may complete out of order at the
// gateway, and the stale completion must not clobber the newer version.
func (c *Cache) Update(key uint64, version uint64) {
	if e, ok := c.entries[key]; ok && version > e.version {
		e.version = version
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int { return len(c.entries) }

// HitRatio returns hits / lookups, or 0 before the first lookup.
func (c *Cache) HitRatio() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Counters returns the cumulative hit/miss/admit/reject/eviction tallies.
func (c *Cache) Counters() (hits, misses, admits, rejects, evictions int64) {
	return c.hits, c.misses, c.admits, c.rejects, c.evictions
}

func (c *Cache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) remove(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	delete(c.entries, e.key)
}

func (c *Cache) moveToFront(e *centry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.entries[e.key] = e
	c.pushFront(e)
}
