package serve

import (
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/sim"
	"durassd/internal/storage"
)

// The deterministic fault-injection plane. A ChaosSpec is a seeded schedule
// of faults — replica brownouts (latency inflation), replica power failures
// with mid-traffic reboot and peer catch-up, and sustained overload bursts —
// each pinned to a virtual instant on a specific domain's engine. Because
// the faults are ordinary simulation events, a chaos run is exactly as
// reproducible as a clean one: byte-identical reports and iotrace digests
// at any worker count, which is what makes failure-handling behavior
// testable at all.

// BrownoutFault inflates one replica's service time by Slowdown during
// [At, At+Duration): the gray-failure mode where a node is alive but slow,
// the case hedged reads and deadlines exist for.
type BrownoutFault struct {
	Shard    int
	Replica  int
	At       time.Duration
	Duration time.Duration
	Slowdown time.Duration
}

// CrashFault power-fails one replica's device at At and reboots it after
// Down. On a successful reboot the replica rejoins its group and catches up
// the writes it missed from a live peer (Group.CatchUp).
type CrashFault struct {
	Shard   int
	Replica int
	At      time.Duration
	Down    time.Duration
}

// OverloadFault floods the box starting at At: Clients noise writers, each
// issuing Ops unthrottled writes into tenant Tenant's key space. Their
// traffic lands in a synthetic "chaos-noise" account so the report keeps
// real tenants and noise separate.
type OverloadFault struct {
	At      time.Duration
	Clients int
	Ops     int
	Tenant  int
}

// ChaosSpec is the full fault schedule of one run.
type ChaosSpec struct {
	Brownouts []BrownoutFault
	Crashes   []CrashFault
	Overloads []OverloadFault
}

// DefaultChaos returns the canonical three-fault schedule used by
// `servebench -chaos` and the serve-chaos simbench scenario: an early
// brownout on one replica, a mid-traffic power-fail-and-reboot on another,
// and an overload burst in between. Instants assume the ChaosTenants
// traffic shape (~150ms of virtual time).
func DefaultChaos() *ChaosSpec {
	return &ChaosSpec{
		Brownouts: []BrownoutFault{
			{Shard: 0, Replica: 1, At: 2 * time.Millisecond, Duration: 10 * time.Millisecond, Slowdown: 600 * time.Microsecond},
		},
		Crashes: []CrashFault{
			// DuraSSD reboot recovery is ~100ms (capacitor recharge), so a
			// 5ms outage rejoins around t=110ms — still mid-traffic, so the
			// catch-up transfer runs under live load.
			{Shard: 1, Replica: 2, At: 5 * time.Millisecond, Down: 5 * time.Millisecond},
		},
		Overloads: []OverloadFault{
			{At: 20 * time.Millisecond, Clients: 6, Ops: 150, Tenant: 0},
		},
	}
}

// ChaosTenants returns the tenant mix for chaos runs: the canonical three
// tenants, rate-capped low enough that the run spans ~150ms of virtual time
// — long enough for a power-failed DuraSSD replica to recharge, rejoin and
// catch up while traffic is still flowing.
func ChaosTenants() []TenantSpec {
	return []TenantSpec{
		{Name: "ycsb-a", Ops: 2000, Threads: 4, WritePct: 50, Zipf: true,
			Rate: 15_000, Burst: 32, Keys: 1500, Seed: 1},
		{Name: "linkbench", Ops: 2000, Threads: 4, WritePct: 25, Zipf: true,
			MissPct: 10, Rate: 15_000, Burst: 32, Keys: 1500, Seed: 2},
		{Name: "tpcc", Ops: 1000, Threads: 2, WritePct: 60, Zipf: false,
			Rate: 7_000, Burst: 16, Keys: 800, Seed: 3},
	}
}

// ChaosScenario returns the canonical chaos configuration: 2 shard groups,
// R=3 replicas at write quorum W=2, the ChaosTenants mix, and the
// DefaultChaos fault schedule.
func ChaosScenario(workers int, seed int64) ScenarioConfig {
	return ScenarioConfig{
		Shards:   2,
		Replicas: 3,
		Workers:  workers,
		Seed:     seed,
		Serve:    Config{Group: GroupConfig{Quorum: 2}},
		Tenants:  ChaosTenants(),
		Chaos:    DefaultChaos(),
	}
}

// installChaos registers spec's fault schedule on the freshly built box and
// returns the synthetic noise accounts (empty when spec is nil). Each fault
// is validated against the topology so a bad spec fails loudly at zero
// virtual time rather than silently never firing.
func installChaos(spec *ChaosSpec, cfg *ScenarioConfig, front *sim.Domain, srv *Server, storesByShard [][]*Store) []*TenantAccount {
	if spec == nil {
		return nil
	}
	for _, b := range spec.Brownouts {
		st := storesByShard[b.Shard][b.Replica]
		eng := st.Domain().Engine()
		slow, at := b.Slowdown, b.At
		eng.Schedule(at, func() { st.SetSlowdown(slow) })
		eng.Schedule(at+b.Duration, func() { st.SetSlowdown(0) })
	}
	for _, c := range spec.Crashes {
		st := storesByShard[c.Shard][c.Replica]
		dom := st.Domain()
		pc := st.Device().(storage.PowerCycler)
		g := srv.Group(c.Shard)
		ri := c.Replica
		dom.Engine().Schedule(c.At, pc.PowerFail)
		dom.Engine().Schedule(c.At+c.Down, func() {
			dom.Go(fmt.Sprintf("serve/chaos-reboot-%d-%d", c.Shard, ri), func(q *sim.Proc) {
				err := pc.Reboot(q)
				dom.Send(front, func() { g.ReplicaRebooted(ri, err) })
			})
		})
	}
	var noise []*TenantAccount
	for oi, o := range spec.Overloads {
		o := o
		ts := cfg.Tenants[o.Tenant]
		// Effectively unthrottled: the burst exists to exercise shedding.
		acct := NewTenantAccount(fmt.Sprintf("chaos-noise-%d", oi), 10_000_000, 1024)
		noise = append(noise, acct)
		for ci := 0; ci < o.Clients; ci++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(oi)*104_729 + int64(ci)*7919 + 0x6e6f6973))
			tn := o.Tenant
			front.Engine().Schedule(o.At, func() {
				front.Go(fmt.Sprintf("serve/chaos-noise-%d-%d", oi, ci), func(p *sim.Proc) {
					for i := 0; i < o.Ops; i++ {
						// Noise outcomes (shed, unavailable) are the point;
						// they land in the account, not in errors.
						_, _ = srv.Put(p, acct, tenantKey(tn, rng.Intn(ts.Keys)))
					}
				})
			})
		}
	}
	return noise
}
