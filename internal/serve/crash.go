package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// The MidBurst crash scenario: a multi-tenant write burst through the full
// serving layer (gateway, ring, admission, group-commit shard stores) with
// the power cut mid-burst across every shard at the same instant — the
// whole box loses its supply, exactly the event the paper's §5.2 study
// injects. Shards are a mix of DuraSSD and volatile-cache SSD-A drives,
// all in the fast no-barrier configuration, so one campaign demonstrates
// both halves of the claim at the serving layer: an ack returned through
// the gateway is durable on DuraSSD shards and is not on volatile ones.

// burstLatency is the gateway<->shard link latency of the crash rig.
const burstLatency = 100 * time.Microsecond

// BurstSpec configures one mid-burst crash run.
type BurstSpec struct {
	// Shards is the shard count (default 4; at least 2).
	Shards int
	// Volatile lists the shard indices built on volatile-cache SSD-A
	// drives; the rest are DuraSSD. Default: every odd shard.
	Volatile []int
	// Tenants is the number of writer tenants (default 3), Clients the
	// writer processes per tenant (default 2).
	Tenants int
	Clients int
	// Updates is the total number of Put attempts across all writers
	// (default 240).
	Updates int
	// Keys is the per-tenant key-space size (default 64).
	Keys int
	Seed int64
	// CutAfter is the power-cut instant; every shard loses power at the
	// same virtual time. Zero with NoCut unset means 5ms.
	CutAfter time.Duration
}

func (sp *BurstSpec) defaults() {
	if sp.Shards < 2 {
		sp.Shards = 4
	}
	if sp.Volatile == nil {
		for i := 1; i < sp.Shards; i += 2 {
			sp.Volatile = append(sp.Volatile, i)
		}
	}
	if sp.Tenants <= 0 {
		sp.Tenants = 3
	}
	if sp.Clients <= 0 {
		sp.Clients = 2
	}
	if sp.Updates <= 0 {
		sp.Updates = 240
	}
	if sp.Keys <= 0 {
		sp.Keys = 64
	}
	if sp.CutAfter == 0 {
		sp.CutAfter = 5 * time.Millisecond
	}
}

// Name summarizes the configuration (stable: it feeds schedule digests).
func (sp BurstSpec) Name() string {
	cp := sp
	cp.defaults()
	return fmt.Sprintf("serve midburst shards=%d volatile=%d barrier=off", cp.Shards, len(cp.Volatile))
}

// BurstOptions are the probe/replay knobs crash-point exploration layers on
// a BurstSpec, mirroring faults.Options.
type BurstOptions struct {
	// NoCut runs the burst to completion without a power cut (the probe
	// run that records the command schedule).
	NoCut bool
	// EventFn observes device events on every shard (member = shard index).
	EventFn func(member int, kind iotrace.EventKind, at time.Duration)
}

// BurstVerdict is the audited outcome of one mid-burst crash, split by
// device class: the Dura tallies are the paper's claim under test (must be
// zero), the Volatile tallies are the expected failure of the control
// group.
type BurstVerdict struct {
	AckedCommits int // Puts acknowledged through the gateway before the cut
	DuraKeys     int // distinct acked keys audited on DuraSSD shards
	VolatileKeys int // distinct acked keys audited on volatile-cache shards
	DuraLost     int // acked versions missing on DuraSSD shards after recovery
	DuraTorn     int // DuraSSD pages failing their image checksum
	VolatileLost int // acked versions missing on volatile shards
	VolatileTorn int // volatile pages failing their image checksum
	Shed         int // Puts shed by admission control (never acknowledged)
	Err          error
}

// Safe reports whether the DuraSSD shards preserved every guarantee. The
// volatile tallies are deliberately not part of this: their loss is the
// expected outcome, not a failure.
func (v *BurstVerdict) Safe() bool {
	return v.Err == nil && v.DuraLost == 0 && v.DuraTorn == 0
}

// tenantKey builds tenant t's i-th key: disjoint per-tenant key spaces.
func tenantKey(t, i int) uint64 { return uint64(t+1)<<32 | uint64(i) }

// RunBurst executes the mid-burst crash scenario and audits the aftermath.
func RunBurst(sp BurstSpec, o BurstOptions) (*BurstVerdict, error) {
	sp.defaults()
	v := &BurstVerdict{}

	// The campaign replays need determinism of the recorded schedule, not
	// wall-clock speed: one worker keeps event capture order trivially
	// deterministic (and the digest-identity sweeps cover the parallel case
	// separately).
	cluster := sim.NewCluster(sp.Shards+1, burstLatency, 1)
	defer cluster.Close()
	front := cluster.Domain(0)

	ring := NewRing(sp.Shards)
	var keys []uint64
	for t := 0; t < sp.Tenants; t++ {
		for i := 0; i < sp.Keys; i++ {
			keys = append(keys, tenantKey(t, i))
		}
	}
	parts := PartitionKeys(ring, keys)

	isVolatile := make([]bool, sp.Shards)
	for _, i := range sp.Volatile {
		if i < 0 || i >= sp.Shards {
			return nil, fmt.Errorf("serve: volatile shard index %d out of range", i)
		}
		isVolatile[i] = true
	}
	devs := make([]storage.Device, sp.Shards)
	stores := make([]*Store, sp.Shards)
	for i := 0; i < sp.Shards; i++ {
		dom := cluster.Domain(i + 1)
		prof := ssd.DuraSSD(16)
		if isVolatile[i] {
			prof = ssd.SSDA(16)
		}
		dev, err := ssd.New(dom.Engine(), prof)
		if err != nil {
			return nil, err
		}
		devs[i] = dev
		st, err := OpenStore(dom, dev, parts[i], StoreConfig{Barrier: false, RealBytes: true})
		if err != nil {
			return nil, err
		}
		stores[i] = st
		if o.EventFn != nil {
			member := i
			dev.Registry().SetEventFn(func(kind iotrace.EventKind, at time.Duration) {
				o.EventFn(member, kind, at)
			})
		}
	}
	srv, err := New(front, stores, Config{Concurrency: 8, QueueDepth: 64, CacheSize: 64})
	if err != nil {
		return nil, err
	}
	srv.BuildFilters(parts)

	// Writer tenants: Put random keys from their own space, record the
	// acked versions. An ack through the gateway is the durability contract
	// under audit.
	acked := make(map[uint64]uint64)
	perClient := sp.Updates / (sp.Tenants * sp.Clients)
	for t := 0; t < sp.Tenants; t++ {
		acct := NewTenantAccount(fmt.Sprintf("tenant%d", t), 1_000_000, 64)
		for c := 0; c < sp.Clients; c++ {
			tn, cn := t, c
			rng := sim.NewRand(sp.Seed + int64(tn)*104_729 + int64(cn)*7_919)
			front.Go(fmt.Sprintf("burst-%d-%d", tn, cn), func(p *sim.Proc) {
				for i := 0; i < perClient; i++ {
					key := tenantKey(tn, rng.Intn(sp.Keys))
					ver, err := srv.Put(p, acct, key)
					if errors.Is(err, ErrOverloaded) {
						v.Shed++
						continue
					}
					if err != nil {
						return // power failed mid-operation
					}
					if ver > acked[key] {
						acked[key] = ver
					}
					v.AckedCommits++
				}
			})
		}
	}

	if !o.NoCut {
		for i := 0; i < sp.Shards; i++ {
			cy := devs[i].(storage.PowerCycler)
			cluster.Domain(i+1).Engine().Schedule(sp.CutAfter, cy.PowerFail)
		}
	}
	cluster.Run()
	for _, dev := range devs {
		dev.Registry().SetEventFn(nil) // the schedule covers the workload only
	}

	// Partition the acked keys by owning shard, in sorted key order so the
	// audit schedule never depends on map iteration.
	sortedKeys := make([]uint64, 0, len(acked))
	for k := range acked {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Slice(sortedKeys, func(i, j int) bool { return sortedKeys[i] < sortedKeys[j] })
	byShard := make([][]uint64, sp.Shards)
	for _, k := range sortedKeys {
		sh := ring.Lookup(k)
		byShard[sh] = append(byShard[sh], k)
		if isVolatile[sh] {
			v.VolatileKeys++
		} else {
			v.DuraKeys++
		}
	}

	// Reboot every shard (firmware recovery) and audit: each acked version
	// must still parse from its page image at or above the acked version.
	lost := make([]int, sp.Shards)
	torn := make([]int, sp.Shards)
	auditErr := make([]error, sp.Shards)
	for i := 0; i < sp.Shards; i++ {
		i := i
		st := stores[i]
		st.Domain().Go(fmt.Sprintf("recover-%d", i), func(p *sim.Proc) {
			if !o.NoCut {
				if err := devs[i].(storage.PowerCycler).Reboot(p); err != nil {
					auditErr[i] = fmt.Errorf("shard %d reboot: %w", i, err)
					return
				}
			}
			for _, k := range byShard[i] {
				got, ok, err := st.CrashRead(p, k)
				if err != nil {
					auditErr[i] = fmt.Errorf("shard %d audit: %w", i, err)
					return
				}
				if !ok {
					torn[i]++
					lost[i]++
					continue
				}
				if got < acked[k] {
					lost[i]++
				}
			}
		})
	}
	cluster.Run()
	for i := 0; i < sp.Shards; i++ {
		if auditErr[i] != nil && v.Err == nil {
			v.Err = auditErr[i]
		}
		if isVolatile[i] {
			v.VolatileLost += lost[i]
			v.VolatileTorn += torn[i]
		} else {
			v.DuraLost += lost[i]
			v.DuraTorn += torn[i]
		}
	}
	return v, nil
}
