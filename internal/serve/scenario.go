package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"durassd/internal/iotrace"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/stats"
)

// The mixed-tenant serving scenario: three database tenants with the
// traffic shapes of the repo's workload suites — YCSB-A (50/50 read/update,
// zipfian), LinkBench (read-heavy social graph, zipfian, a slice of reads
// for absent keys), and TPC-C (write-heavy order entry, uniform, rate-
// capped) — sharing one sharded serving box. It is the serving-layer
// analogue of the paper's Tables 4/5: concurrent clients, one storage
// stack, throughput and tail latency per tenant.

// Client-side overload retry policy: a shed request is retried up to
// clientRetries times, sleeping clientRetryBase<<attempt plus uniform
// seeded jitter in [0, base<<attempt) between attempts.
const (
	clientRetries   = 3
	clientRetryBase = 100 * time.Microsecond
)

// TenantSpec shapes one tenant's traffic.
type TenantSpec struct {
	Name     string
	Ops      int   // operations across all threads
	Threads  int   // client processes
	WritePct int   // percentage of operations that are Puts
	Zipf     bool  // zipfian key popularity (vs uniform)
	MissPct  int   // percentage of reads that target absent keys
	Rate     int   // token-bucket ops/sec (the tenant's QoS contract)
	Burst    int   // token-bucket burst
	Keys     int   // tenant key-space size
	Seed     int64 // offset into the scenario seed
}

// ScenarioConfig configures one mixed-tenant run.
type ScenarioConfig struct {
	Shards   int           // engine shard groups (default 4)
	Replicas int           // replicas per shard group (default 1; quorum via Serve.Group)
	Workers  int           // cluster worker threads (default 1)
	Latency  time.Duration // gateway<->shard link latency (default 100µs)
	Seed     int64
	Serve    Config       // gateway tuning
	Tenants  []TenantSpec // default: DefaultTenants()
	Chaos    *ChaosSpec   // optional deterministic fault injection
}

func (c *ScenarioConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Latency <= 0 {
		c.Latency = 100 * time.Microsecond
	}
	// Deliberately shallow per-shard admission: the default mix should
	// overload occasionally so shedding and queueing are exercised, not
	// just representable.
	if c.Serve.Concurrency == 0 {
		c.Serve.Concurrency = 2
	}
	if c.Serve.QueueDepth == 0 {
		c.Serve.QueueDepth = 4
	}
	if c.Serve.CacheSize == 0 {
		c.Serve.CacheSize = 512
	}
	if c.Tenants == nil {
		c.Tenants = DefaultTenants()
	}
}

// DefaultTenants returns the canonical three-tenant mix.
func DefaultTenants() []TenantSpec {
	return []TenantSpec{
		{Name: "ycsb-a", Ops: 3000, Threads: 4, WritePct: 50, Zipf: true,
			Rate: 100_000, Burst: 64, Keys: 2000, Seed: 1},
		{Name: "linkbench", Ops: 3000, Threads: 4, WritePct: 25, Zipf: true,
			MissPct: 10, Rate: 100_000, Burst: 64, Keys: 2000, Seed: 2},
		{Name: "tpcc", Ops: 1500, Threads: 2, WritePct: 60, Zipf: false,
			Rate: 2000, Burst: 16, Keys: 1000, Seed: 3},
	}
}

// TenantResult is one tenant's slice of the report.
type TenantResult struct {
	Name        string
	Ops         int64 // operations answered (including definitive not-founds)
	Shed        int64 // rejected with ErrOverloaded
	Retried     int64 // client retries after ErrOverloaded (backoff slept)
	Throttled   int64 // operations delayed by the token bucket
	ThrottleT   time.Duration
	CacheHits   int64
	BloomSkips  int64
	StaleReads  int64 // cache hits served while the owning group was degraded
	Unavailable int64 // operations refused with ErrShardUnavailable
	ReadP50     time.Duration
	ReadP99     time.Duration
	WriteP50    time.Duration
	WriteP99    time.Duration
}

// ScenarioResult is the deterministic outcome of one run: everything in it
// is a pure function of the configuration, so two runs with the same seed
// render byte-identical reports at any worker count.
type ScenarioResult struct {
	Config      ScenarioConfig
	Tenants     []TenantResult // in spec order, then any chaos noise accounts
	ShedByShard []int64
	CacheHits   int64
	CacheRatio  float64
	Robust      RobustnessCounters // replication/failure-handling tallies
	Digest      string             // merged iotrace event digest across all shards
	Events      uint64             // engine events processed across the cluster
	Elapsed     time.Duration
}

// RunScenario builds the serving box on a fresh cluster and drives the
// tenant mix to completion.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg.defaults()
	domains := 1 + cfg.Shards*cfg.Replicas
	cluster := sim.NewCluster(domains, cfg.Latency, cfg.Workers)
	defer cluster.Close()
	front := cluster.Domain(0)

	// Key layout: tenant-prefixed spaces partitioned over the ring.
	ring := NewRing(cfg.Shards)
	var keys []uint64
	for t, ts := range cfg.Tenants {
		for i := 0; i < ts.Keys; i++ {
			keys = append(keys, tenantKey(t, i))
		}
	}
	parts := PartitionKeys(ring, keys)

	// Shard group i's replica r lives in domain 1 + i*Replicas + r, each on
	// its own DuraSSD. Every replica of a group holds the group's full key
	// space.
	rec := iotrace.NewShardRecorder(domains)
	storesByShard := make([][]*Store, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		for r := 0; r < cfg.Replicas; r++ {
			dom := cluster.Domain(1 + i*cfg.Replicas + r)
			dev, err := ssd.New(dom.Engine(), ssd.DuraSSD(16))
			if err != nil {
				return nil, err
			}
			// The paper's fast configuration: no barriers, the durable device
			// cache carries the ack. Timing mode — the crash campaigns cover
			// the real-bytes audit.
			st, err := OpenStore(dom, dev, parts[i], StoreConfig{Barrier: false})
			if err != nil {
				return nil, err
			}
			storesByShard[i] = append(storesByShard[i], st)
			rec.Attach(1+i*cfg.Replicas+r, dev.Registry())
		}
	}
	srv, err := NewReplicated(front, storesByShard, cfg.Serve)
	if err != nil {
		return nil, err
	}
	srv.BuildFilters(parts)

	// Fault injection: every schedule entry lands on a specific domain's
	// engine at a fixed virtual instant, so chaos is as deterministic as the
	// traffic it disrupts.
	noise := installChaos(cfg.Chaos, &cfg, front, srv, storesByShard)

	// Tenant clients. Each thread owns a seeded generator, so the issued
	// op stream is a pure function of (scenario seed, tenant, thread).
	accounts := make([]*TenantAccount, len(cfg.Tenants))
	tenantErr := make([]error, len(cfg.Tenants))
	for t, ts := range cfg.Tenants {
		acct := NewTenantAccount(ts.Name, ts.Rate, ts.Burst)
		accounts[t] = acct
		perThread := ts.Ops / ts.Threads
		for th := 0; th < ts.Threads; th++ {
			tn, thn, spec := t, th, ts
			rng := rand.New(rand.NewSource(cfg.Seed + ts.Seed*1_000_003 + int64(th)*22_695_477))
			var zipf *rand.Zipf
			if spec.Zipf {
				zipf = rand.NewZipf(rng, 1.01, 20, uint64(spec.Keys-1))
			}
			front.Go(fmt.Sprintf("%s-%d", spec.Name, thn), func(p *sim.Proc) {
				for i := 0; i < perThread; i++ {
					var idx int
					if zipf != nil {
						idx = int(zipf.Uint64())
					} else {
						idx = rng.Intn(spec.Keys)
					}
					write := rng.Intn(100) < spec.WritePct
					key := tenantKey(tn, idx)
					if !write && spec.MissPct > 0 && rng.Intn(100) < spec.MissPct {
						key = tenantKey(tn, spec.Keys+idx) // absent key
					}
					// Overload is transient by contract (ErrOverloaded means
					// "the queue was full at that instant"), so a shed request
					// is retried a bounded number of times with seeded-jitter
					// exponential backoff before the client gives up on it.
					var err error
					for a := 0; ; a++ {
						if write {
							_, err = srv.Put(p, acct, key)
						} else {
							_, err = srv.Get(p, acct, key)
						}
						if a >= clientRetries || !errors.Is(err, ErrOverloaded) {
							break
						}
						acct.Retried++
						back := clientRetryBase << uint(a)
						back += time.Duration(rng.Int63n(int64(back)))
						p.Sleep(back)
					}
					switch {
					case err == nil, errors.Is(err, ErrNotFound),
						errors.Is(err, ErrOverloaded), errors.Is(err, ErrShardUnavailable):
						// Answered, definitively absent, shed after retries, or
						// refused by a degraded group: all are legitimate
						// serving outcomes, already accounted.
					default:
						if tenantErr[tn] == nil {
							tenantErr[tn] = fmt.Errorf("serve: tenant %s thread %d: %w", spec.Name, thn, err)
						}
						return
					}
				}
			})
		}
	}
	cluster.Run()
	for _, reps := range storesByShard {
		for _, st := range reps {
			st.Device().Registry().SetEventFn(nil)
		}
	}
	for _, err := range tenantErr {
		if err != nil {
			return nil, err
		}
	}

	res := &ScenarioResult{Config: cfg, Events: cluster.Events(), Digest: rec.Digest()}
	for i := 0; i < cfg.Shards; i++ {
		res.ShedByShard = append(res.ShedByShard, srv.ShedCount(i))
	}
	hits, misses, _, _, _ := srv.Cache().Counters()
	res.CacheHits = hits
	if hits+misses > 0 {
		res.CacheRatio = float64(hits) / float64(hits+misses)
	}
	res.Robust = srv.Robustness()
	var last time.Duration
	for i := 0; i < domains; i++ {
		if now := cluster.Domain(i).Now(); now > last {
			last = now
		}
	}
	res.Elapsed = last
	for _, acct := range append(accounts, noise...) {
		res.Tenants = append(res.Tenants, TenantResult{
			Name:        acct.Name,
			Ops:         acct.Ops,
			Shed:        acct.Shed,
			Retried:     acct.Retried,
			Throttled:   acct.Throttled,
			ThrottleT:   acct.ThrottleT,
			CacheHits:   acct.CacheHits,
			BloomSkips:  acct.BloomSkip,
			StaleReads:  acct.StaleReads,
			Unavailable: acct.Unavailable,
			ReadP50:     acct.Reads.Percentile(50),
			ReadP99:     acct.Reads.Percentile(99),
			WriteP50:    acct.Writes.Percentile(50),
			WriteP99:    acct.Writes.Percentile(99),
		})
	}
	return res, nil
}

// Table renders the per-tenant report.
func (r *ScenarioResult) Table() *stats.Table {
	// The title deliberately omits the worker count: the rendered report is
	// the byte string the determinism sweeps compare across worker counts.
	tbl := stats.NewTable(
		fmt.Sprintf("Mixed-tenant serving: %d shards, seed %d",
			r.Config.Shards, r.Config.Seed),
		"Tenant", "Ops", "Shed", "Retried", "Throttled", "CacheHit", "BloomSkip",
		"ReadP50", "ReadP99", "WriteP50", "WriteP99")
	for _, t := range r.Tenants {
		tbl.AddRow(t.Name, t.Ops, t.Shed, t.Retried, t.Throttled, t.CacheHits, t.BloomSkips,
			t.ReadP50, t.ReadP99, t.WriteP50, t.WriteP99)
	}
	tbl.AddComment("shed by shard: %v; cache hit ratio %.3f; virtual elapsed %v",
		r.ShedByShard, r.CacheRatio, r.Elapsed)
	if r.Config.Replicas > 1 || r.Config.Chaos != nil {
		rb := r.Robust
		tbl.AddComment("replication R=%d: hedges %d, deadlines %d, retries %d, breaker opens %d, unavailable %d, catchup keys %d, stale reads %d",
			r.Config.Replicas, rb.Hedges, rb.Deadlines, rb.Retries, rb.BreakerOpens,
			rb.Unavailable, rb.CatchupKeys, rb.StaleReads)
	}
	tbl.AddComment("iotrace digest %s (identical at any worker count for this seed)", r.Digest[:16])
	return tbl
}

// Render returns the canonical textual report: the byte string the
// determinism sweeps compare across worker counts and GOMAXPROCS values.
func (r *ScenarioResult) Render() string { return r.Table().String() }
