package serve

import (
	"fmt"
	"testing"
)

// MidBurst crash tests: the paper's §5.2 durability claim, audited through
// the full serving layer. A power cut lands mid-burst on every shard of a
// mixed DuraSSD/SSD-A box running with barriers off; acked writes on the
// DuraSSD shards must all survive, and the volatile-cache shards must lose
// some — the control group that proves the audit has teeth.

// TestMidBurstDuraSafeVolatileLossy is the headline assertion.
func TestMidBurstDuraSafeVolatileLossy(t *testing.T) {
	v, err := RunBurst(BurstSpec{Seed: 1}, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Err != nil {
		t.Fatalf("audit error: %v", v.Err)
	}
	if v.AckedCommits == 0 {
		t.Fatal("no commit was acknowledged before the cut")
	}
	if v.DuraKeys == 0 || v.VolatileKeys == 0 {
		t.Fatalf("audit did not cover both device classes: dura=%d volatile=%d keys",
			v.DuraKeys, v.VolatileKeys)
	}
	if v.DuraLost != 0 || v.DuraTorn != 0 {
		t.Errorf("DuraSSD shards lost %d / tore %d acked writes; the durable cache claim is broken",
			v.DuraLost, v.DuraTorn)
	}
	if v.VolatileLost == 0 {
		t.Error("volatile-cache shards lost nothing: the cut landed after everything drained, so the audit proves nothing")
	}
	if !v.Safe() {
		t.Error("verdict not Safe despite clean DuraSSD tallies")
	}
}

// TestMidBurstNoCutClean: without a power cut the burst completes and the
// audit finds every acked version on every shard, volatile included — loss
// in the cut runs comes from the cut, not from the rig.
func TestMidBurstNoCutClean(t *testing.T) {
	v, err := RunBurst(BurstSpec{Seed: 1}, BurstOptions{NoCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Err != nil {
		t.Fatalf("audit error: %v", v.Err)
	}
	if v.AckedCommits == 0 {
		t.Fatal("no commits acknowledged")
	}
	if v.DuraLost+v.DuraTorn+v.VolatileLost+v.VolatileTorn != 0 {
		t.Errorf("losses without a power cut: %+v", v)
	}
}

// TestMidBurstAllDuraSafe: a box built entirely from DuraSSD shards survives
// the same cut with zero loss anywhere.
func TestMidBurstAllDuraSafe(t *testing.T) {
	v, err := RunBurst(BurstSpec{Volatile: []int{}, Seed: 1}, BurstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.VolatileKeys != 0 {
		t.Fatalf("no shard is volatile but %d keys audited as volatile", v.VolatileKeys)
	}
	if !v.Safe() || v.DuraLost != 0 || v.DuraTorn != 0 {
		t.Errorf("all-DuraSSD box lost data: %+v", v)
	}
}

// TestMidBurstDeterminism: identical spec and seed reproduce the identical
// verdict — the property the crashpoint campaign's replays depend on.
func TestMidBurstDeterminism(t *testing.T) {
	run := func() string {
		v, err := RunBurst(BurstSpec{Seed: 3}, BurstOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", v)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("mid-burst verdict diverged between identical runs:\n%s\n--- vs ---\n%s", first, second)
	}
}
