package serve

import (
	"testing"
	"time"
)

// Determinism under fault injection, the property that makes the chaos
// plane usable: brownout, power-fail-reboot-catchup and overload are all
// ordinary simulation events, so the full report — tenant tables, noise
// accounts, robustness counters, iotrace digest — is byte-identical at any
// worker count. (The name extends the TestScenarioDeterminism family that
// CI's digest sweep runs at multiple GOMAXPROCS values.)
func TestScenarioDeterminismUnderChaos(t *testing.T) {
	var base string
	for _, workers := range []int{1, 2, 4} {
		res, err := RunScenario(ChaosScenario(workers, 42))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := res.Render()
		if base == "" {
			base = out
			continue
		}
		if out != base {
			t.Errorf("chaos report diverges at workers=%d:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, out)
		}
	}
}

// The canonical chaos schedule actually exercises the machinery it exists
// to exercise: the crash opens a breaker and forces a catch-up transfer,
// the brownout forces hedged reads, the overload forces shedding and
// client retries, and the degraded window sheds writes as unavailable.
func TestChaosScenarioExercisesFailurePaths(t *testing.T) {
	res, err := RunScenario(ChaosScenario(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	rb := res.Robust
	if rb.BreakerOpens == 0 {
		t.Errorf("no breaker opened across a replica power failure")
	}
	if rb.CatchupKeys == 0 {
		t.Errorf("no catch-up transfer after the mid-traffic reboot")
	}
	if rb.Hedges == 0 {
		t.Errorf("no hedged reads through a %v brownout", DefaultChaos().Brownouts[0].Slowdown)
	}
	var retried, shed int64
	for _, tr := range res.Tenants {
		retried += tr.Retried
		shed += tr.Shed
	}
	if shed == 0 || retried == 0 {
		t.Errorf("overload burst produced shed=%d retried=%d, want both > 0", shed, retried)
	}
	// The scenario must still mostly serve: every real tenant completes its
	// ops (as answers, sheds, or unavailable refusals — never a hang).
	for _, tr := range res.Tenants[:3] {
		if tr.Ops == 0 {
			t.Errorf("tenant %s served zero operations under chaos", tr.Name)
		}
	}
	if res.Elapsed < 100*time.Millisecond {
		t.Errorf("virtual elapsed %v; the chaos mix should span the reboot window (~110ms)", res.Elapsed)
	}
}

// Replication with healthy replicas must not change what the tenants see:
// an R=3 W=2 run without chaos serves every tenant fully, with zero
// unavailable refusals and no stale-flagged reads.
func TestReplicatedScenarioHealthyServesClean(t *testing.T) {
	cfg := ScenarioConfig{
		Shards: 2, Replicas: 3, Workers: 1, Seed: 9,
		Serve:   Config{Group: GroupConfig{Quorum: 2}},
		Tenants: ChaosTenants(),
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Unavailable != 0 {
			t.Errorf("tenant %s: %d unavailable with all replicas healthy", tr.Name, tr.Unavailable)
		}
		if tr.StaleReads != 0 {
			t.Errorf("tenant %s: %d stale-flagged reads with all groups at quorum", tr.Name, tr.StaleReads)
		}
		if tr.Ops == 0 {
			t.Errorf("tenant %s served zero operations", tr.Name)
		}
	}
	if res.Robust.BreakerOpens != 0 {
		t.Errorf("%d breakers opened with no faults injected", res.Robust.BreakerOpens)
	}
}
