package serve

import "time"

// Breaker is a per-replica circuit breaker on the virtual clock. It opens
// after Threshold consecutive hard failures (deadline blowouts, power
// failures, read-only degradation), swallowing further traffic to a replica
// that is evidently down instead of burning a deadline on every request.
// After Cooldown of virtual time the breaker goes half-open: exactly one
// probe request is let through, and its outcome decides between closing
// (replica recovered) and re-opening for another cooldown.
//
// The breaker is passive state queried on the request path — no timers, so
// an idle breaker never keeps the cluster alive. It lives in the gateway
// domain and is only touched by that domain's processes, so it needs no
// locks and its transitions land in deterministic virtual-time order.
type Breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before a half-open probe

	fails    int           // consecutive failures while closed
	open     bool          // true in both open and half-open
	openedAt time.Duration // virtual instant the breaker (re)opened
	probing  bool          // a half-open probe is in flight

	opens int64 // cumulative open transitions (reporting)
}

// NewBreaker returns a closed breaker (minimums: threshold 1, cooldown 1ns).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < 1 {
		cooldown = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent at virtual time now. Closed:
// always. Open: only once the cooldown elapsed, and then exactly one probe
// until its outcome arrives.
func (b *Breaker) Allow(now time.Duration) bool {
	if !b.open {
		return true
	}
	if b.probing || now < b.openedAt+b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful request: the replica is healthy, the breaker
// closes and the consecutive-failure count resets.
func (b *Breaker) Success() {
	b.fails = 0
	b.open = false
	b.probing = false
}

// Failure records a hard failure at virtual time now. A failed half-open
// probe re-opens immediately; while closed, the breaker opens once the
// consecutive-failure count reaches the threshold.
func (b *Breaker) Failure(now time.Duration) {
	if b.open {
		// The in-flight probe (or a straggling pre-open request) failed:
		// restart the cooldown from here.
		b.probing = false
		b.openedAt = now
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open = true
		b.probing = false
		b.openedAt = now
		b.opens++
	}
}

// Open reports whether the breaker is open (including half-open).
func (b *Breaker) Open() bool { return b.open }

// Opens returns the cumulative number of closed->open transitions.
func (b *Breaker) Opens() int64 { return b.opens }
