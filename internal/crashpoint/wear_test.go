package crashpoint

import (
	"testing"

	"durassd/internal/faults"
)

// TestWearOutMidMigration asserts the wear-out campaign cell actually
// exercises the new crash-point family: the armed stuck-bit damage is
// discovered by the scrubber, retirement migrates the block's live data,
// and the explorer derives at least one mid-migration cut from the
// recorded retire window. Every cut — including the ones landing inside
// the migration — must audit safe on DuraSSD: a half-evacuated block is
// simply re-discovered and retried after reboot, never a durability loss.
func TestWearOutMidMigration(t *testing.T) {
	c := Campaign{
		Scenario: faults.Scenario{
			Device: faults.DuraSSD, Engine: faults.EngineInnoDB,
			Clients: 4, Updates: 60, Seed: 11, WearOut: true,
		},
		MaxPoints: 3, DumpTears: 2,
	}
	res, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.KindCounts()
	if counts[MidMigration] == 0 {
		t.Errorf("no mid-migration crash points derived (counts=%v)", counts)
	}
	if res.Unsafe != 0 {
		t.Errorf("wear campaign should stay safe on DuraSSD: unsafe=%d lost=%d torn=%d",
			res.Unsafe, res.Lost, res.Torn)
	}
}
