package crashpoint

import (
	"testing"

	"durassd/internal/faults"
)

// fastCampaign is a small but representative exploration: enough updates
// that acks, programs and dumps all appear in the schedule, small enough
// that a full replay sweep stays in test-friendly time.
func fastCampaign(dev faults.DeviceKind, eng faults.EngineKind, barrier, protect bool) Campaign {
	return Campaign{
		Scenario: faults.Scenario{
			Device: dev, Engine: eng,
			Barrier: barrier, DoubleWrite: protect,
			Clients: 4, Updates: 160, Seed: 7,
		},
		MaxPoints: 10,
		DumpTears: 2,
	}
}

func TestExplorationIsDeterministic(t *testing.T) {
	// The acceptance bar: same seed, byte-identical schedule digest AND
	// identical verdicts, twice in a row.
	c := fastCampaign(faults.DuraSSD, faults.EngineInnoDB, false, false)
	a, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("schedule digests differ:\n  %s\n  %s", a.Digest, b.Digest)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		va, vb := a.Outcomes[i].Verdict, b.Outcomes[i].Verdict
		if a.Outcomes[i].Point != b.Outcomes[i].Point {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Outcomes[i].Point, b.Outcomes[i].Point)
		}
		if va.AckedCommits != vb.AckedCommits || va.LostCommits != vb.LostCommits ||
			va.TornPages != vb.TornPages || va.Safe() != vb.Safe() {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, va, vb)
		}
	}
}

func TestDifferentSeedsDifferentDigest(t *testing.T) {
	c := fastCampaign(faults.DuraSSD, faults.EngineInnoDB, false, false)
	a, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Scenario.Seed = 8
	b, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatal("different seeds produced the same schedule digest")
	}
}

func TestDuraSSDSurvivesEveryEnumeratedPoint(t *testing.T) {
	// The paper's claim, checked adversarially: barriers off, protection
	// off, and DuraSSD survives every enumerated crash point — including
	// torn in-flight programs and a torn mid-dump page.
	for _, eng := range []faults.EngineKind{faults.EngineInnoDB, faults.EnginePgSQL} {
		t.Run(string(eng), func(t *testing.T) {
			res, err := Explore(fastCampaign(faults.DuraSSD, eng, false, false))
			if err != nil {
				t.Fatal(err)
			}
			counts := res.KindCounts()
			if counts[AfterAck] == 0 || counts[MidProgram] == 0 {
				t.Fatalf("schedule misses core kinds: %v", counts)
			}
			if counts[MidDump] == 0 {
				t.Fatalf("no mid-dump points enumerated: %v", counts)
			}
			// The mid-dump fault must actually fire: the firmware retried a
			// torn dump program in at least one trial.
			var retried bool
			for _, o := range res.Outcomes {
				if o.Point.Kind == MidDump && o.Verdict.DumpRetries > 0 {
					retried = true
				}
			}
			if !retried {
				t.Fatal("no mid-dump trial recorded a dump retry — the partial-dump fault did not fire")
			}
			if res.Unsafe != 0 {
				for _, o := range res.Outcomes {
					if !o.Verdict.Safe() {
						t.Errorf("%s at %v: lost=%d torn=%d err=%v", o.Point.Kind,
							o.Point.At, o.Verdict.LostCommits, o.Verdict.TornPages, o.Verdict.Err)
					}
				}
				t.Fatalf("DuraSSD fast config unsafe at %d/%d points", res.Unsafe, len(res.Points))
			}
		})
	}
}

func TestVolatileSSDFailsAtSomeEnumeratedPoint(t *testing.T) {
	// The counterexample: with barriers off, SSD-A must demonstrably lose
	// an acked commit or expose a torn page at some enumerated point.
	for _, eng := range []faults.EngineKind{faults.EngineInnoDB, faults.EnginePgSQL} {
		t.Run(string(eng), func(t *testing.T) {
			res, err := Explore(fastCampaign(faults.SSDA, eng, false, false))
			if err != nil {
				t.Fatal(err)
			}
			if res.Lost == 0 && res.Torn == 0 {
				t.Fatalf("SSD-A fast config lost nothing across %d enumerated points — the exploration is not adversarial enough", len(res.Points))
			}
		})
	}
}
