package crashpoint

import (
	"durassd/internal/faults"
	"durassd/internal/serve"
)

// Matrix returns the canonical exploration campaign set that
// `crashtest -explore` runs: both engines crossed with the three host
// configurations the paper contrasts — DuraSSD in the fast configuration
// (barriers off, torn-page protection off), the volatile-cache SSD-A in
// the same fast configuration (where it must fail), and SSD-A in the
// safe-but-slow configuration (where software protection saves it) — plus
// a wear-out cell: DuraSSD in the fast configuration with bad-block
// retirement armed, so the exploration also cuts power mid-migration.
//
// The ninth campaign is MidBurst: a multi-tenant write burst through the
// internal/serve gateway over four shards, two DuraSSD and two volatile,
// all in the fast configuration, with the cut hitting every shard at the
// derived instant. It extends the claim one layer up: an ack returned
// through the serving layer is durable exactly when the shard underneath
// has a durable cache.
//
// Keeping the matrix here, rather than inlined in cmd/crashtest, lets the
// determinism regression test replay the exact same campaign set twice and
// assert the full digest set is byte-identical.
func Matrix(points, updates int, seed int64) []Campaign {
	var out []Campaign
	for _, eng := range []faults.EngineKind{faults.EngineInnoDB, faults.EnginePgSQL} {
		for _, cell := range []struct {
			dev              faults.DeviceKind
			barrier, protect bool
			wear             bool
		}{
			{faults.DuraSSD, false, false, false},
			{faults.SSDA, false, false, false},
			{faults.SSDA, true, true, false},
			{faults.DuraSSD, false, false, true},
		} {
			out = append(out, Campaign{
				Scenario: faults.Scenario{
					Device: cell.dev, Engine: eng,
					Barrier: cell.barrier, DoubleWrite: cell.protect,
					Clients: 4, Updates: updates, Seed: seed,
					WearOut: cell.wear,
				},
				MaxPoints: points,
				DumpTears: 2,
			})
		}
	}
	out = append(out, Campaign{
		Burst: &serve.BurstSpec{
			Shards:   4,
			Volatile: []int{1, 3},
			Updates:  updates,
			Seed:     seed,
		},
		MaxPoints: points,
	})
	// The tenth and eleventh campaigns are ReplicaLoss: the same write burst
	// through R=3 W=2 replicated DuraSSD shard groups, with a single replica
	// of every group cut at the derived instant (the victim rotating across
	// points) plus a mid-catch-up double fault. Quorum-acked writes must
	// survive every point. The R=1 volatile control demonstrates the
	// opposite: no quorum, no durable cache, acked writes vanish — tallied
	// as VolLost, the expected control outcome.
	out = append(out, Campaign{
		Replica: &serve.ReplicaSpec{
			Groups: 2, Replicas: 3, Quorum: 2,
			Updates: updates, Seed: seed,
		},
		MaxPoints: points,
	})
	out = append(out, Campaign{
		Replica: &serve.ReplicaSpec{
			Groups: 2, Replicas: 1, Quorum: 1, Volatile: true,
			Updates: updates, Seed: seed,
		},
		MaxPoints: points,
	})
	return out
}
