package crashpoint

import (
	"fmt"
	"strings"
	"testing"
)

// TestMatrixDigestSetDeterminism is the double-run regression the simlint
// suite exists to keep true: the full `crashtest -explore` campaign matrix
// (both engines, all three host configurations), run twice in-process with
// the same seed, must produce a byte-identical set of schedule digests and
// identical safety tallies. Any wall-clock read, global-rand draw, raw
// goroutine, or map-order leak anywhere under the exploration stack would
// show up here as a digest or verdict divergence.
func TestMatrixDigestSetDeterminism(t *testing.T) {
	run := func() string {
		var b strings.Builder
		for _, c := range Matrix(3, 60, 11) {
			res, err := Explore(c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			fmt.Fprintf(&b, "%s %s", res.Name, res.Digest)
			for _, o := range res.Outcomes {
				fmt.Fprintf(&b, " | %s@%d tear=%d acked=%d lost=%d torn=%d safe=%t",
					o.Point.Kind, int64(o.Point.At), o.Point.DumpTear,
					o.Verdict.AckedCommits, o.Verdict.LostCommits, o.Verdict.TornPages, o.Verdict.Safe())
				if o.Burst != nil {
					fmt.Fprintf(&b, " vlost=%d vtorn=%d", o.Burst.VolatileLost, o.Burst.VolatileTorn)
				}
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("explore matrix diverged between identical-seed runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, " ") || strings.Count(first, "\n") != 11 {
		t.Fatalf("unexpected digest-set shape:\n%s", first)
	}
}
