package crashpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/serve"
)

// exploreReplica is Explore's runner for the ReplicaLoss campaign: a write
// burst through replicated shard groups with one replica of every group
// power-failed at the derived adversarial instant — right after a quorum
// ack, mid cell-program, mid flush drain, mid erase. The probe records the
// merged device schedule across every replica of every group; the replays
// rotate the victim index across points, so over the campaign every replica
// position gets cut at adversarial instants.
//
// On top of the schedule-derived points, one MidCatchup point replays the
// recovery-under-failure arm: the victim is cut at the earliest ack
// (maximal missed-write delta), and a second replica power-fails shortly
// after the victim's catch-up transfer begins.
//
// The claim under test is the replication layer's contract: a write
// acknowledged at quorum W over DuraSSD replicas survives the loss of any
// single replica at any instant, stays readable from the survivors, and
// converges everywhere after reboot plus delta catch-up. For the Volatile
// control (R=1 over volatile-cache SSD-A) loss is the expected outcome and
// is tallied in Result.VolatileLost/VolatileTorn, mirroring how the
// MidBurst campaign accounts for its volatile shards.
func exploreReplica(c Campaign) (*Result, error) {
	sp := *c.Replica
	sp.CutAfter = 0
	sp.CutPeerDuringCatchup = false
	replicas := sp.Replicas
	if replicas <= 0 {
		replicas = 3
	}

	// Probe: run the burst with no fault, recording the schedule.
	var events []event
	probe, err := serve.RunReplicaLoss(sp, serve.ReplicaOptions{
		NoCut: true,
		EventFn: func(member int, kind iotrace.EventKind, at time.Duration) {
			events = append(events, event{member, kind, at})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("crashpoint: replica probe run: %w", err)
	}
	if probe.Err != nil {
		return nil, fmt.Errorf("crashpoint: replica probe audit: %w", probe.Err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("crashpoint: replica probe recorded no device events")
	}

	dev := faults.DuraSSD
	if sp.Volatile {
		dev = faults.SSDA
	}
	prof, err := faults.Profile(dev)
	if err != nil {
		return nil, err
	}
	points, _ := derivePoints(events, prof.NAND.ProgramLatency, prof.NAND.EraseLatency)
	points = samplePoints(points, c.MaxPoints)

	// The mid-catch-up arm needs a live donor, so it only exists for R > 1.
	// Cutting at the earliest ack maximizes what the victim misses and
	// therefore what the interrupted catch-up has to transfer.
	if replicas > 1 {
		var minAck time.Duration
		for _, ev := range events {
			if ev.kind != iotrace.EvWriteAck {
				continue
			}
			if minAck == 0 || ev.at < minAck {
				minAck = ev.at
			}
		}
		if minAck > 0 {
			points = append(points, Point{Kind: MidCatchup, At: minAck + time.Nanosecond})
		}
	}
	sortPoints(points)
	points = dedupePoints(points)

	res := &Result{
		Name:   c.Name(),
		Points: points,
		Digest: digestReplica(sp, len(events), points),
	}
	for i, pt := range points {
		sp2 := sp
		sp2.CutAfter = pt.At
		sp2.CutReplica = i % replicas
		sp2.CutPeerDuringCatchup = pt.Kind == MidCatchup
		rv, err := serve.RunReplicaLoss(sp2, serve.ReplicaOptions{})
		if err != nil {
			return nil, fmt.Errorf("crashpoint: replica %s at %v: %w", pt.Kind, pt.At, err)
		}
		// The faults.Verdict mirror carries the claim-under-test tallies so
		// the shared reporting reads them uniformly; the full replica verdict
		// rides along. Volatile-control losses are the expected outcome and
		// go in the volatile tallies instead.
		v := &faults.Verdict{AckedCommits: rv.AckedCommits, Err: rv.Err}
		if sp.Volatile {
			res.VolatileLost += rv.GroupLost + rv.Lost
			res.VolatileTorn += rv.Torn
			if rv.Err != nil {
				res.Unsafe++
			}
		} else {
			v.LostCommits = rv.GroupLost + rv.Lost
			v.TornPages = rv.Torn
			if !rv.Safe() {
				res.Unsafe++
			}
			res.Lost += rv.GroupLost + rv.Lost
			res.Torn += rv.Torn
		}
		res.Outcomes = append(res.Outcomes, Outcome{Point: pt, Verdict: v, Replica: rv})
	}
	return res, nil
}

// digestReplica serializes the replica-loss schedule canonically and hashes
// it.
func digestReplica(sp serve.ReplicaSpec, eventCount int, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d events=%d\n", sp.Name(), sp.Seed, eventCount)
	for _, p := range pts {
		fmt.Fprintf(&b, "%s@%d tear=%d\n", p.Kind, int64(p.At), p.DumpTear)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
