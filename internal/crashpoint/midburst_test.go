package crashpoint

import (
	"strings"
	"testing"

	"durassd/internal/serve"
)

// TestExploreBurstCampaign: systematic crash-point exploration over the
// serving-layer mid-burst scenario. Every derived point replays the burst
// with the cut pinned to that instant; the DuraSSD shards must be safe at
// every point, while the volatile-cache shards show the expected loss at
// least somewhere — the same asymmetry the engine-level campaigns establish,
// now demonstrated through gateway acks.
func TestExploreBurstCampaign(t *testing.T) {
	c := Campaign{
		Burst:     &serve.BurstSpec{Shards: 4, Volatile: []int{1, 3}, Updates: 80, Seed: 5},
		MaxPoints: 4,
	}
	res, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Name, "midburst") {
		t.Errorf("result name %q does not identify the burst campaign", res.Name)
	}
	if len(res.Points) == 0 {
		t.Fatal("no crash points derived from the probe schedule")
	}
	if res.Unsafe != 0 || res.Lost != 0 || res.Torn != 0 {
		t.Errorf("DuraSSD shards unsafe at %d points (lost=%d torn=%d)", res.Unsafe, res.Lost, res.Torn)
	}
	if res.VolatileLost == 0 {
		t.Error("no point lost anything on the volatile shards: the exploration never caught a shard mid-burst")
	}
	sawAck := false
	for _, o := range res.Outcomes {
		if o.Burst == nil {
			t.Fatalf("burst campaign outcome at %v carries no burst verdict", o.Point.At)
		}
		if o.Burst.AckedCommits > 0 {
			sawAck = true
		}
		if !o.Burst.Safe() {
			t.Errorf("point %s@%v: DuraSSD verdict unsafe: %+v", o.Point.Kind, o.Point.At, o.Burst)
		}
	}
	if !sawAck {
		t.Error("no explored point had acknowledged commits: every cut landed before the burst started")
	}
	// Reproducibility: the digest is a pure function of the spec and seed.
	res2, err := Explore(c)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Errorf("burst exploration digest diverged: %s vs %s", res.Digest, res2.Digest)
	}
}
