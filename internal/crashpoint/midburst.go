package crashpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/serve"
)

// exploreBurst is Explore's runner for the serving-layer MidBurst campaign:
// a multi-tenant write burst through internal/serve over mixed
// DuraSSD/volatile shards, with the cut landing on every shard at once.
// The probe records the merged device schedule across all shards; the
// derived points (after each ack, mid program, mid flush drain, mid erase)
// therefore attack whichever shard was busiest at each instant. Mid-dump
// tears are an engine-campaign refinement and are not enumerated here.
//
// Outcome accounting is split by device class: a point is unsafe only if a
// DuraSSD shard lost an acked write or tore a page — that is the paper's
// claim surviving the serving layer. Volatile-shard loss is the expected
// control result and is tallied in Result.VolatileLost/VolatileTorn.
func exploreBurst(c Campaign) (*Result, error) {
	sp := *c.Burst
	sp.CutAfter = 0

	// Probe: run the burst to completion, recording the schedule.
	var events []event
	probe, err := serve.RunBurst(sp, serve.BurstOptions{
		NoCut: true,
		EventFn: func(member int, kind iotrace.EventKind, at time.Duration) {
			events = append(events, event{member, kind, at})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("crashpoint: burst probe run: %w", err)
	}
	if probe.Err != nil {
		return nil, fmt.Errorf("crashpoint: burst probe audit: %w", probe.Err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("crashpoint: burst probe recorded no device events")
	}

	// Program/erase midpoints come from the DuraSSD profile; the volatile
	// members' windows differ slightly, but every derived instant is still
	// a legitimate adversarial cut — the replay audit, not the point
	// placement, decides safety.
	prof, err := faults.Profile(faults.DuraSSD)
	if err != nil {
		return nil, err
	}
	points, _ := derivePoints(events, prof.NAND.ProgramLatency, prof.NAND.EraseLatency)
	points = samplePoints(points, c.MaxPoints)
	sortPoints(points)
	points = dedupePoints(points)

	res := &Result{
		Name:   c.Name(),
		Points: points,
		Digest: digestBurst(sp, len(events), points),
	}
	for _, pt := range points {
		sp2 := sp
		sp2.CutAfter = pt.At
		bv, err := serve.RunBurst(sp2, serve.BurstOptions{})
		if err != nil {
			return nil, fmt.Errorf("crashpoint: burst %s at %v: %w", pt.Kind, pt.At, err)
		}
		// The faults.Verdict mirror carries the DuraSSD-side tallies so
		// the shared reporting (Safe(), failure listings) reads the claim
		// under test; the full split verdict rides along.
		v := &faults.Verdict{
			AckedCommits: bv.AckedCommits,
			LostCommits:  bv.DuraLost,
			TornPages:    bv.DuraTorn,
			Err:          bv.Err,
		}
		res.Outcomes = append(res.Outcomes, Outcome{Point: pt, Verdict: v, Burst: bv})
		if !bv.Safe() {
			res.Unsafe++
		}
		res.Lost += bv.DuraLost
		res.Torn += bv.DuraTorn
		res.VolatileLost += bv.VolatileLost
		res.VolatileTorn += bv.VolatileTorn
	}
	return res, nil
}

// digestBurst serializes the burst schedule canonically and hashes it.
func digestBurst(sp serve.BurstSpec, eventCount int, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d events=%d\n", sp.Name(), sp.Seed, eventCount)
	for _, p := range pts {
		fmt.Fprintf(&b, "%s@%d tear=%d\n", p.Kind, int64(p.At), p.DumpTear)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
