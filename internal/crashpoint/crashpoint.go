// Package crashpoint explores power-failure schedules systematically
// instead of sampling them.
//
// The random-instant campaign in internal/faults answers "does a typical
// cut hurt?". This package answers the stronger question the paper's §5.2
// actually claims: does *any* cut hurt? A probe run records the device
// command schedule (every write acknowledgment, flush drain, NAND program
// and erase window), the recorder derives the adversarial instants from
// it — right after an ack, mid cell-program, mid erase pulse, mid flush
// drain, and mid capacitor dump — and each derived point is replayed as
// its own deterministic trial with the power cut pinned to that instant.
//
// Because the simulation is deterministic for a given seed, the replayed
// prefix is bit-identical to the probe's, so the cut lands exactly where
// the schedule says. Two explorations with the same campaign produce the
// same schedule digest and the same verdicts; the digest is part of the
// result so harnesses can assert it.
package crashpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/serve"
)

// Kind classifies a crash point by the schedule feature it attacks.
type Kind uint8

// Crash-point kinds.
const (
	// AfterAck cuts power immediately after a host write command was
	// acknowledged — the durability contract's sharpest edge.
	AfterAck Kind = iota
	// MidProgram cuts power inside a NAND cell-program window, tearing the
	// in-flight page (the FAST'13 "shorn write").
	MidProgram
	// InFlushDrain cuts power midway through a queued flush-cache drain.
	InFlushDrain
	// MidErase cuts power inside a block-erase pulse (with the
	// interrupted-erase fault armed, the block is left indeterminate).
	MidErase
	// MidDump lets the workload cut land normally, then tears the Nth
	// capacitor-powered dump program — power dying mid-dump-block.
	MidDump
	// MidMigration cuts power midway through a bad-block retirement's
	// live-data migration (WearOut scenarios): the block is half-evacuated
	// and not yet retired when the supply dies.
	MidMigration
	// MidCatchup (ReplicaLoss campaigns) cuts the victim replica early, then
	// power-fails a second replica while the rebooted victim is mid
	// catch-up transfer — recovery under failure.
	MidCatchup
	numKinds
)

// String returns a short stable label (used in schedule digests).
func (k Kind) String() string {
	switch k {
	case AfterAck:
		return "after-ack"
	case MidProgram:
		return "mid-program"
	case InFlushDrain:
		return "in-flush-drain"
	case MidErase:
		return "mid-erase"
	case MidDump:
		return "mid-dump"
	case MidMigration:
		return "mid-migration"
	case MidCatchup:
		return "mid-catchup"
	}
	return "unknown"
}

// Point is one enumerated crash point.
type Point struct {
	Kind Kind
	// At is the virtual instant the power cut is scheduled for.
	At time.Duration
	// DumpTear, for MidDump points, is the 1-based index of the dump
	// program that the dying supply tears (0 otherwise).
	DumpTear int
}

// Campaign describes one systematic exploration.
type Campaign struct {
	// Scenario is the workload and device configuration to explore. Its
	// CutAfter is ignored: the exploration chooses the cut instants.
	// Ignored when Burst is set.
	Scenario faults.Scenario
	// Burst, when non-nil, explores the serving-layer mid-burst scenario
	// instead of a single-engine database scenario: a multi-tenant write
	// burst through internal/serve across mixed DuraSSD/volatile shards,
	// with the cut hitting every shard at the derived instant. Its
	// CutAfter is ignored, like Scenario's.
	Burst *serve.BurstSpec
	// Replica, when non-nil, explores the replica-loss scenario: a write
	// burst through R-way replicated shard groups with one replica cut at
	// the derived instant (the victim index rotating across points), plus a
	// mid-catch-up double-fault point. Its CutAfter, CutReplica and
	// CutPeerDuringCatchup are ignored: the exploration chooses them.
	Replica *serve.ReplicaSpec
	// MaxPoints caps the number of replayed crash points (default 24). The
	// cap is split evenly across the kinds present in the schedule, and
	// each kind's points are sampled evenly across its timeline, so the
	// exploration stays representative when it cannot be exhaustive.
	MaxPoints int
	// DumpTears is how many mid-dump tear indices to enumerate (default 3;
	// < 0 disables mid-dump points). Only meaningful on devices that dump
	// (DuraSSD); drives without a dump area get no MidDump points.
	DumpTears int
}

// Name summarizes the campaign's configuration, whichever runner it uses.
func (c Campaign) Name() string {
	if c.Burst != nil {
		return c.Burst.Name()
	}
	if c.Replica != nil {
		return c.Replica.Name()
	}
	return c.Scenario.Name()
}

// Outcome pairs a crash point with its audited verdict. For burst
// campaigns, Verdict carries the DuraSSD-side tallies (the claim under
// test) and Burst the full split-by-device-class verdict; for replica-loss
// campaigns, Verdict mirrors the claim-under-test tallies and Replica
// carries the full replication verdict.
type Outcome struct {
	Point   Point
	Verdict *faults.Verdict
	Burst   *serve.BurstVerdict
	Replica *serve.ReplicaVerdict
}

// Result is the outcome of one exploration.
type Result struct {
	Scenario faults.Scenario
	// Name is the campaign name the result belongs to (Campaign.Name()).
	Name string
	// Points are the enumerated crash points, in execution order.
	Points []Point
	// Digest is the SHA-256 of the canonical schedule serialization: the
	// same seed yields the same digest, byte for byte.
	Digest string
	// Outcomes holds one verdict per point, aligned with Points.
	Outcomes []Outcome
	// Unsafe counts outcomes that lost an acked commit, exposed a torn
	// page, or failed to recover at all. For burst campaigns only the
	// DuraSSD shards count: volatile-shard loss is the expected control
	// outcome, tallied separately below.
	Unsafe int
	// Lost and Torn total the losses across all outcomes (DuraSSD shards
	// only for burst campaigns).
	Lost, Torn int
	// VolatileLost and VolatileTorn total the expected losses on the
	// volatile-cache shards of burst campaigns and on the volatile R=1
	// control of replica-loss campaigns (0 for engine campaigns).
	VolatileLost, VolatileTorn int
}

// KindCounts tallies the enumerated points by kind.
func (r *Result) KindCounts() [int(numKinds)]int {
	var c [int(numKinds)]int
	for _, p := range r.Points {
		c[p.Kind]++
	}
	return c
}

// event is one recorded device event.
type event struct {
	member int
	kind   iotrace.EventKind
	at     time.Duration
}

// Explore runs the campaign: one probe run to record the schedule, one
// probe cut to size the dump, then one deterministic replay per point.
func Explore(c Campaign) (*Result, error) {
	if c.MaxPoints <= 0 {
		c.MaxPoints = 24
	}
	if c.DumpTears == 0 {
		c.DumpTears = 3
	}
	if c.Burst != nil {
		return exploreBurst(c)
	}
	if c.Replica != nil {
		return exploreReplica(c)
	}
	s := c.Scenario
	s.CutAfter = 0

	// Probe: run the workload to completion, recording the schedule.
	var events []event
	_, err := faults.RunWith(s, faults.Options{
		NoCut: true,
		EventFn: func(member int, kind iotrace.EventKind, at time.Duration) {
			events = append(events, event{member, kind, at})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("crashpoint: probe run: %w", err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("crashpoint: probe run recorded no device events")
	}

	prof, err := faults.Profile(s.Device)
	if err != nil {
		return nil, err
	}
	points, lastAck := derivePoints(events, prof.NAND.ProgramLatency, prof.NAND.EraseLatency)
	points = samplePoints(points, c.MaxPoints)

	// Mid-dump points: cut at the latest acknowledged write (maximal dirty
	// state), count the dump the firmware performs, then enumerate tears.
	if c.DumpTears > 0 && prof.Cache.Durable && lastAck > 0 {
		s2 := s
		s2.CutAfter = lastAck
		probe, err := faults.RunWith(s2, faults.Options{})
		if err != nil {
			return nil, fmt.Errorf("crashpoint: dump probe: %w", err)
		}
		n := int(probe.DumpPages)
		tears := c.DumpTears
		if tears > n {
			tears = n
		}
		for i := 0; i < tears; i++ {
			// Evenly spaced 1-based indices across the dump, last included.
			k := 1 + i*(n-1)/max(1, tears-1)
			if tears == 1 {
				k = n
			}
			points = append(points, Point{Kind: MidDump, At: lastAck, DumpTear: k})
		}
	}
	sortPoints(points)
	points = dedupePoints(points)

	res := &Result{Scenario: s, Name: s.Name(), Points: points, Digest: digest(s, len(events), points)}

	// Replay: one deterministic trial per point. The interrupted-erase
	// fault is armed in every trial — it only changes behaviour when an
	// erase pulse is actually in flight at the cut, and arming it uniformly
	// keeps the fault surface maximal.
	for _, pt := range points {
		s2 := s
		s2.CutAfter = pt.At
		v, err := faults.RunWith(s2, faults.Options{
			DumpTearAfter:    pt.DumpTear,
			InterruptedErase: true,
		})
		if err != nil {
			return nil, fmt.Errorf("crashpoint: %s at %v: %w", pt.Kind, pt.At, err)
		}
		res.Outcomes = append(res.Outcomes, Outcome{Point: pt, Verdict: v})
		if !v.Safe() {
			res.Unsafe++
		}
		res.Lost += v.LostCommits
		res.Torn += v.TornPages
	}
	return res, nil
}

// derivePoints turns the recorded schedule into candidate crash points and
// also returns the latest write-ack cut instant (0 if none).
func derivePoints(events []event, progLat, eraseLat time.Duration) ([]Point, time.Duration) {
	var pts []Point
	var lastAck time.Duration
	flushStart := make(map[int]time.Duration)
	retireStart := make(map[int]time.Duration)
	for _, ev := range events {
		switch ev.kind {
		case iotrace.EvWriteAck:
			// +1ns: the scheduler fires cut events before same-instant
			// device events, so cutting exactly at the ack timestamp would
			// land *before* the acknowledgment in the replay.
			at := ev.at + time.Nanosecond
			pts = append(pts, Point{Kind: AfterAck, At: at})
			if at > lastAck {
				lastAck = at
			}
		case iotrace.EvProgram:
			pts = append(pts, Point{Kind: MidProgram, At: ev.at + progLat/2})
		case iotrace.EvErase:
			pts = append(pts, Point{Kind: MidErase, At: ev.at + eraseLat/2})
		case iotrace.EvFlushStart:
			flushStart[ev.member] = ev.at
		case iotrace.EvFlushEnd:
			if st, ok := flushStart[ev.member]; ok && ev.at > st {
				pts = append(pts, Point{Kind: InFlushDrain, At: st + (ev.at-st)/2})
				delete(flushStart, ev.member)
			}
		case iotrace.EvRetireStart:
			retireStart[ev.member] = ev.at
		case iotrace.EvRetireEnd:
			if st, ok := retireStart[ev.member]; ok && ev.at > st {
				pts = append(pts, Point{Kind: MidMigration, At: st + (ev.at-st)/2})
				delete(retireStart, ev.member)
			}
		}
	}
	return pts, lastAck
}

// samplePoints enforces the MaxPoints cap: the budget is split evenly over
// the kinds present, and each kind keeps an even spread over its sorted
// timeline (first and last always included).
func samplePoints(pts []Point, maxPoints int) []Point {
	byKind := make(map[Kind][]Point)
	var kinds []Kind
	for _, p := range pts {
		if _, ok := byKind[p.Kind]; !ok {
			kinds = append(kinds, p.Kind)
		}
		byKind[p.Kind] = append(byKind[p.Kind], p)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	quota := maxPoints / len(kinds)
	if quota < 1 {
		quota = 1
	}
	var out []Point
	for _, k := range kinds {
		group := byKind[k]
		sortPoints(group)
		group = dedupePoints(group)
		if len(group) <= quota {
			out = append(out, group...)
			continue
		}
		if quota == 1 {
			out = append(out, group[len(group)-1])
			continue
		}
		for i := 0; i < quota; i++ {
			out = append(out, group[i*(len(group)-1)/(quota-1)])
		}
	}
	return out
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].At != pts[j].At {
			return pts[i].At < pts[j].At
		}
		if pts[i].Kind != pts[j].Kind {
			return pts[i].Kind < pts[j].Kind
		}
		return pts[i].DumpTear < pts[j].DumpTear
	})
}

func dedupePoints(pts []Point) []Point {
	out := pts[:0]
	for i, p := range pts {
		if i > 0 && p == pts[i-1] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// digest serializes the schedule canonically and hashes it.
func digest(s faults.Scenario, eventCount int, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s engine=%s seed=%d events=%d\n", s.Name(), s.Engine, s.Seed, eventCount)
	for _, p := range pts {
		fmt.Fprintf(&b, "%s@%d tear=%d\n", p.Kind, int64(p.At), p.DumpTear)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
