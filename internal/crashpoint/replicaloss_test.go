package crashpoint

import (
	"testing"

	"durassd/internal/serve"
)

// The ReplicaLoss campaign proves the replication claim at every derived
// adversarial instant: cutting any single replica of an R=3 W=2 DuraSSD
// group right after a quorum ack, mid program, mid flush drain, or mid
// erase — and cutting a second replica mid catch-up — never loses a
// quorum-acked write.
func TestExploreReplicaQuorumSafeAtEveryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-loss exploration replays many full runs")
	}
	res, err := Explore(Campaign{
		Replica: &serve.ReplicaSpec{
			Groups: 2, Replicas: 3, Quorum: 2,
			Updates: 60, Seed: 11,
		},
		MaxPoints: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no crash points derived")
	}
	if res.Unsafe != 0 || res.Lost != 0 || res.Torn != 0 {
		t.Errorf("unsafe=%d lost=%d torn=%d; quorum-acked writes must survive every point",
			res.Unsafe, res.Lost, res.Torn)
	}
	counts := res.KindCounts()
	if counts[AfterAck] == 0 {
		t.Errorf("no after-ack points in %v", res.Points)
	}
	if counts[MidCatchup] != 1 {
		t.Errorf("mid-catchup points = %d, want exactly 1", counts[MidCatchup])
	}
	// The victim index must rotate so every replica position gets cut.
	seen := map[int]bool{}
	for i := range res.Points {
		seen[i%3] = true
	}
	if len(res.Points) >= 3 && (!seen[0] || !seen[1] || !seen[2]) {
		t.Errorf("victim rotation did not cover all replica positions over %d points", len(res.Points))
	}
	for _, o := range res.Outcomes {
		if o.Replica == nil {
			t.Fatalf("outcome %v missing the replica verdict", o.Point)
		}
		if o.Replica.AckedCommits == 0 {
			t.Errorf("point %s@%v acked nothing — nothing audited", o.Point.Kind, o.Point.At)
		}
	}
}

// The R=1 volatile control must demonstrate loss: with no quorum and no
// durable cache, at least one derived point loses acked writes — and the
// losses land in the Volatile tallies, not in Unsafe, because loss is the
// expected control outcome (mirroring the MidBurst volatile shards).
func TestExploreReplicaVolatileControlLoses(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-loss exploration replays many full runs")
	}
	res, err := Explore(Campaign{
		Replica: &serve.ReplicaSpec{
			Groups: 2, Replicas: 1, Quorum: 1, Volatile: true,
			Updates: 60, Seed: 11,
		},
		MaxPoints: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VolatileLost == 0 {
		t.Errorf("volatile R=1 control lost nothing across %d points — the control must demonstrate loss",
			len(res.Points))
	}
	if res.Unsafe != 0 || res.Lost != 0 {
		t.Errorf("unsafe=%d lost=%d; control losses are expected and belong in the volatile tallies",
			res.Unsafe, res.Lost)
	}
	for _, pt := range res.Points {
		if pt.Kind == MidCatchup {
			t.Errorf("mid-catchup point enumerated for R=1 — there is no donor to cut")
		}
	}
}

// Two explorations of the same replica campaign are byte-identical: same
// digest, same points, same verdicts.
func TestExploreReplicaDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-loss exploration replays many full runs")
	}
	run := func() *Result {
		res, err := Explore(Campaign{
			Replica: &serve.ReplicaSpec{
				Groups: 2, Replicas: 3, Quorum: 2,
				Updates: 60, Seed: 7,
			},
			MaxPoints: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Digest != b.Digest {
		t.Fatalf("digest diverged: %s vs %s", a.Digest, b.Digest)
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i].Replica, b.Outcomes[i].Replica
		if x.AckedCommits != y.AckedCommits || x.Lost != y.Lost ||
			x.GroupLost != y.GroupLost || x.CatchupKeys != y.CatchupKeys {
			t.Errorf("point %d verdict diverged: %+v vs %+v", i, x, y)
		}
	}
}
