// Package durassd is the public entry point of the DuraSSD reproduction: a
// discrete-event-simulated storage stack — NAND flash, FTL, the paper's
// capacitor-backed durable write cache, commercial volatile-cache SSD and
// disk baselines, a filesystem layer with write barriers, and database
// engines (InnoDB-style and Couchbase-style) — faithful enough to
// regenerate every table and figure of the SIGMOD 2014 paper "Durable
// Write Cache in Flash Memory SSD for Relational and NoSQL Databases".
//
// Everything runs in virtual time on a single deterministic engine. A
// typical session:
//
//	s := durassd.NewSession()
//	dev, _ := s.NewDevice(durassd.DuraSSD, 16)
//	fs := s.NewFS(dev, durassd.NoBarriers)
//	s.Run(func(p *sim.Proc) {
//	    f, _ := fs.Create("data", 1024)
//	    _ = f.WritePages(p, 0, 1, nil) // durable on ack: capacitor-backed
//	})
//
// The cmd/ tools regenerate the paper's evaluation; internal/repro holds
// the experiment harnesses; internal/faults injects power failures and
// audits atomicity and durability end to end.
package durassd

import (
	"fmt"

	"durassd/internal/hdd"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/ssd"
	"durassd/internal/storage"
)

// DeviceKind selects one of the paper's four evaluation devices.
type DeviceKind string

// The paper's devices.
const (
	// DuraSSD is the paper's prototype: a flash SSD whose DRAM write cache
	// is made durable by tantalum capacitors, with atomic page writes, a
	// power-failure dump area and capacitor-backed mapping table.
	DuraSSD DeviceKind = "DuraSSD"
	// SSDA is a commercial SSD with a 512 MB volatile write cache.
	SSDA DeviceKind = "SSD-A"
	// SSDB is a commercial SSD with a 128 MB volatile write cache.
	SSDB DeviceKind = "SSD-B"
	// HDD is a 15K RPM enterprise disk with a 16 MB track cache.
	HDD DeviceKind = "HDD"
)

// Barrier settings for NewFS, aliasing the boolean for readability.
const (
	Barriers   = true  // fsync sends flush-cache to the device (safe default)
	NoBarriers = false // fsync trusts the device cache (safe only on DuraSSD)
)

// Session owns one simulation engine. All devices, filesystems and
// processes created through a session share its virtual clock.
type Session struct {
	eng *sim.Engine
}

// NewSession returns a fresh session with the clock at zero.
func NewSession() *Session { return &Session{eng: sim.New()} }

// Engine exposes the underlying discrete-event engine.
func (s *Session) Engine() *sim.Engine { return s.eng }

// NewDevice builds a powered-on device of the given kind. scale (>= 1)
// shrinks capacity for faster simulation; 1 is ~4 GiB of flash.
func (s *Session) NewDevice(kind DeviceKind, scale int) (storage.Device, error) {
	switch kind {
	case DuraSSD:
		return ssd.New(s.eng, ssd.DuraSSD(scale))
	case SSDA:
		return ssd.New(s.eng, ssd.SSDA(scale))
	case SSDB:
		return ssd.New(s.eng, ssd.SSDB(scale))
	case HDD:
		return hdd.New(s.eng, hdd.Cheetah15K(scale))
	default:
		return nil, fmt.Errorf("durassd: unknown device kind %q", kind)
	}
}

// NewFS mounts a filesystem on the device with write barriers on or off.
// Turning barriers off is the paper's fast path — and is only safe when the
// device cache is durable.
func (s *Session) NewFS(dev storage.Device, barriers bool) *host.FS {
	return host.NewFS(dev, barriers)
}

// Run executes fn as a simulated process and drives the engine until all
// scheduled work completes, returning the virtual time consumed.
func (s *Session) Run(fn func(p *sim.Proc)) {
	s.eng.Go("main", fn)
	s.eng.Run()
}

// Go starts an additional concurrent simulated process (call before or
// inside Run).
func (s *Session) Go(name string, fn func(p *sim.Proc)) {
	s.eng.Go(name, fn)
}

// PowerFail cuts power to a device immediately (it must implement
// storage.PowerCycler, which all built-in devices do).
func PowerFail(dev storage.Device) error {
	pc, ok := dev.(storage.PowerCycler)
	if !ok {
		return fmt.Errorf("durassd: device does not support power cycling")
	}
	pc.PowerFail()
	return nil
}

// Reboot restores power and runs the device's recovery inside process p.
func Reboot(p *sim.Proc, dev storage.Device) error {
	pc, ok := dev.(storage.PowerCycler)
	if !ok {
		return fmt.Errorf("durassd: device does not support power cycling")
	}
	return pc.Reboot(p)
}
