// atomickv: a journal-less key-value store built directly on DuraSSD's
// atomic page writes.
//
// The store is the byte-exact B+-tree from internal/btree: every mutation
// is a handful of single-page writes with no write-ahead log, no
// double-write buffer and no fsync. That design is only sound because the
// device guarantees each page write lands atomically and durably on ack —
// the "tremendous opportunity ... for the leaner and more robust design of
// a database system" the paper claims. The demo hammers the store while
// cutting power repeatedly; after each reboot the tree must check clean
// and contain every acknowledged update.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"durassd"
	"durassd/internal/btree"
	"durassd/internal/host"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func main() {
	s := durassd.NewSession()
	dev, err := s.NewDevice(durassd.DuraSSD, 16)
	if err != nil {
		log.Fatal(err)
	}
	fs := s.NewFS(dev, durassd.NoBarriers)

	var file *host.File
	s.Run(func(p *sim.Proc) {
		file, err = fs.Create("kv.db", dev.Pages()/2)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := btree.Create(p, file, 4*storage.KB); err != nil {
			log.Fatal(err)
		}
	})

	rng := rand.New(rand.NewSource(7))
	acked := make(map[uint64]byte) // key -> last acknowledged value
	const rounds = 5

	for round := 1; round <= rounds; round++ {
		// Cut power at a random instant during this round's writes.
		cut := time.Duration(1+rng.Intn(20)) * time.Millisecond
		start := s.Engine().Now()
		s.Engine().Schedule(cut, func() { _ = durassd.PowerFail(dev) })

		writes := 0
		s.Run(func(p *sim.Proc) {
			tree, err := btree.Open(p, file, 4*storage.KB)
			if err != nil {
				log.Fatalf("round %d open: %v", round, err)
			}
			for i := 0; i < 2000; i++ {
				k := uint64(rng.Intn(500))
				v := byte(rng.Intn(255) + 1)
				if err := tree.Put(p, k, []byte{v}); err != nil {
					return // power failed; unacked update rolls back
				}
				acked[k] = v
				writes++
			}
		})
		fmt.Printf("round %d: %d puts acknowledged, power cut after %v\n",
			round, writes, s.Engine().Now()-start-cut+cut)

		// Reboot and audit: structure valid, every acked value present.
		s.Run(func(p *sim.Proc) {
			if err := durassd.Reboot(p, dev); err != nil {
				log.Fatalf("round %d reboot: %v", round, err)
			}
			tree, err := btree.Open(p, file, 4*storage.KB)
			if err != nil {
				log.Fatalf("round %d reopen: %v", round, err)
			}
			if err := tree.Check(p); err != nil {
				log.Fatalf("round %d structure: %v", round, err)
			}
			for k, want := range acked {
				v, err := tree.Get(p, k)
				if err != nil || v[0] != want {
					log.Fatalf("round %d: key %d = %v (%v), want %d", round, k, v, err, want)
				}
			}
		})
		fmt.Printf("round %d: ✓ tree valid, all %d acknowledged keys intact\n",
			round, len(acked))
	}
	fmt.Println("journal-less KV store survived", rounds, "power cuts")
}
