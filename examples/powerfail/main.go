// powerfail: the same workload, the same power cut, on two drives — the
// capacitor-backed DuraSSD and a conventional volatile-cache SSD — both
// running in the fast configuration (write barriers off).
//
// DuraSSD keeps every acknowledged write; the volatile drive silently loses
// whatever still sat in its cache, and can leave a shorn (half-written)
// page behind — the anomalies the paper cites from the FAST'13 power-fault
// study (§5.2).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"durassd"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func main() {
	for _, kind := range []durassd.DeviceKind{durassd.DuraSSD, durassd.SSDA} {
		fmt.Printf("=== %s, write barriers OFF ===\n", kind)
		s := durassd.NewSession()
		dev, err := s.NewDevice(kind, 16)
		if err != nil {
			log.Fatal(err)
		}
		fs := s.NewFS(dev, durassd.NoBarriers)

		pageBytes := dev.PageSize()
		acked := make(map[storage.LPN][]byte)
		s.Engine().Schedule(3*time.Millisecond, func() { _ = durassd.PowerFail(dev) })

		s.Run(func(p *sim.Proc) {
			file, err := fs.Create("data", 8192)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; ; i++ {
				page := bytes.Repeat([]byte{byte(i%250 + 1)}, pageBytes)
				if err := file.WritePages(p, int64(i%1000), 1, page); err != nil {
					return
				}
				acked[storage.LPN(i%1000)] = page
			}
		})
		fmt.Printf("  acknowledged writes before the cut: %d\n", len(acked))

		lost, torn := 0, 0
		s.Run(func(p *sim.Proc) {
			if err := durassd.Reboot(p, dev); err != nil {
				log.Fatal(err)
			}
			file, err := fs.Open("data")
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, pageBytes)
			for lpn, want := range acked {
				if err := file.ReadPages(p, int64(lpn), 1, buf); err != nil {
					log.Fatal(err)
				}
				switch {
				case bytes.Equal(buf, want):
					// survived
				case isTorn(buf):
					torn++
				default:
					lost++
				}
			}
		})
		st := dev.Stats()
		fmt.Printf("  device says: %d pages dumped under capacitor power, %d pages lost, %d torn by the cut\n",
			st.DumpPages, st.LostPages, st.TornPages)
		fmt.Printf("  audit says:  %d acknowledged writes lost, %d torn pages visible\n", lost, torn)
		if lost == 0 && torn == 0 {
			fmt.Println("  ✓ every acknowledged write survived")
		} else {
			fmt.Println("  ✗ DATA LOSS — this is why volatile caches force barriers+fsync")
		}
		fmt.Println()
	}
}

// isTorn recognizes the half-old/half-garbage image a shorn write leaves.
func isTorn(page []byte) bool {
	half := len(page) / 2
	for i := half; i < len(page); i++ {
		if page[i] == 0xde^byte(i) {
			return true
		}
		if i > half+8 {
			break
		}
	}
	return false
}
