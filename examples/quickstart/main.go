// Quickstart: create a DuraSSD, write data with write barriers OFF, cut
// the power mid-workload, reboot, and verify that every acknowledged write
// survived — the paper's core guarantee, in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"durassd"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func main() {
	s := durassd.NewSession()
	dev, err := s.NewDevice(durassd.DuraSSD, 16)
	if err != nil {
		log.Fatal(err)
	}
	// Barriers off: fsync never sends flush-cache. On a volatile drive
	// this would risk data loss; DuraSSD's capacitors make it safe.
	fs := s.NewFS(dev, durassd.NoBarriers)

	pageBytes := dev.PageSize()
	acked := make(map[storage.LPN][]byte)

	// Cut the power 2 ms into the run, while writes are streaming.
	s.Engine().Schedule(2*time.Millisecond, func() {
		fmt.Printf("⚡ power failure at t=%v\n", s.Engine().Now())
		if err := durassd.PowerFail(dev); err != nil {
			log.Fatal(err)
		}
	})

	s.Run(func(p *sim.Proc) {
		file, err := fs.Create("data", 4096)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			page := bytes.Repeat([]byte{byte(i + 1)}, pageBytes)
			if err := file.WritePages(p, int64(i), 1, page); err != nil {
				fmt.Printf("write %d interrupted by the power cut: %v\n", i, err)
				return
			}
			// The write was acknowledged: DuraSSD now guarantees it.
			acked[storage.LPN(i)] = page
		}
	})
	fmt.Printf("acknowledged %d writes before the lights went out\n", len(acked))
	fmt.Printf("device dumped %d pages to the dump area under capacitor power\n",
		dev.Stats().DumpPages)

	// Reboot: the recovery manager replays the dump, then we audit.
	s.Run(func(p *sim.Proc) {
		if err := durassd.Reboot(p, dev); err != nil {
			log.Fatal(err)
		}
		file, err := fs.Open("data")
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, pageBytes)
		for lpn, want := range acked {
			if err := file.ReadPages(p, int64(lpn), 1, buf); err != nil {
				log.Fatalf("read %d: %v", lpn, err)
			}
			if !bytes.Equal(buf, want) {
				log.Fatalf("page %d lost or corrupted!", lpn)
			}
		}
		fmt.Printf("✓ all %d acknowledged writes intact after recovery (t=%v)\n",
			len(acked), p.Now())
	})
}
