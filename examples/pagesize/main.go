// pagesize: the paper's §2.4 argument in one run — on DuraSSD with write
// barriers off, shrinking the I/O unit from 16 KB to 4 KB roughly triples
// random I/O throughput, while on a disk it barely matters.
package main

import (
	"fmt"
	"log"

	"durassd"
	"durassd/internal/fio"
	"durassd/internal/storage"
)

func main() {
	for _, kind := range []durassd.DeviceKind{durassd.DuraSSD, durassd.HDD} {
		fmt.Printf("=== %s: 128-thread random writes, no barriers ===\n", kind)
		for _, pageBytes := range []int{16 * storage.KB, 8 * storage.KB, 4 * storage.KB} {
			s := durassd.NewSession()
			dev, err := s.NewDevice(kind, 16)
			if err != nil {
				log.Fatal(err)
			}
			fs := s.NewFS(dev, durassd.NoBarriers)
			res, err := fio.Run(s.Engine(), fs, fio.Job{
				Name:       "pagesize",
				Threads:    128,
				BlockBytes: pageBytes,
				Ops:        4000,
				Preload:    true,
				Seed:       int64(pageBytes),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %2dKB pages: %8.0f IOPS  (mean latency %v)\n",
				pageBytes/storage.KB, res.IOPS(), res.Lat.Mean().Round(1000))
		}
		fmt.Println()
	}
	fmt.Println("smaller pages multiply SSD throughput; the disk's seek time dwarfs the transfer either way")
}
