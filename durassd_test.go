package durassd_test

import (
	"bytes"
	"testing"
	"time"

	"durassd"
	"durassd/internal/sim"
	"durassd/internal/storage"
)

func TestSessionDeviceKinds(t *testing.T) {
	s := durassd.NewSession()
	for _, kind := range []durassd.DeviceKind{durassd.DuraSSD, durassd.SSDA, durassd.SSDB, durassd.HDD} {
		dev, err := s.NewDevice(kind, 32)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if dev.Pages() <= 0 || dev.PageSize() <= 0 {
			t.Fatalf("%s: bad geometry", kind)
		}
	}
	if _, err := s.NewDevice("floppy", 1); err == nil {
		t.Fatal("unknown device kind accepted")
	}
}

func TestSessionEndToEnd(t *testing.T) {
	s := durassd.NewSession()
	dev, err := s.NewDevice(durassd.DuraSSD, 32)
	if err != nil {
		t.Fatal(err)
	}
	fs := s.NewFS(dev, durassd.NoBarriers)
	data := bytes.Repeat([]byte{0x5e}, dev.PageSize())
	s.Run(func(p *sim.Proc) {
		f, err := fs.Create("t", 128)
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		if err := f.WritePages(p, 0, 1, data); err != nil {
			t.Errorf("Write: %v", err)
		}
	})
	if s.Engine().Now() == 0 {
		t.Fatal("no virtual time consumed")
	}
	// Power-cycle through the facade.
	if err := durassd.PowerFail(dev); err != nil {
		t.Fatal(err)
	}
	s.Run(func(p *sim.Proc) {
		if err := durassd.Reboot(p, dev); err != nil {
			t.Errorf("Reboot: %v", err)
			return
		}
		f, _ := fs.Open("t")
		buf := make([]byte, dev.PageSize())
		if err := f.ReadPages(p, 0, 1, buf); err != nil {
			t.Errorf("Read: %v", err)
			return
		}
		if !bytes.Equal(buf, data) {
			t.Error("acked write lost across the facade power cycle")
		}
	})
}

func TestSessionConcurrentProcs(t *testing.T) {
	s := durassd.NewSession()
	var done int
	for i := 0; i < 4; i++ {
		s.Go("worker", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			done++
		})
	}
	s.Run(func(p *sim.Proc) { p.Sleep(2 * time.Millisecond) })
	if done != 4 {
		t.Fatalf("workers done = %d", done)
	}
}

func TestStorageDeviceContract(t *testing.T) {
	// Every facade device implements PowerCycler.
	s := durassd.NewSession()
	for _, kind := range []durassd.DeviceKind{durassd.DuraSSD, durassd.HDD} {
		dev, _ := s.NewDevice(kind, 32)
		if _, ok := dev.(storage.PowerCycler); !ok {
			t.Fatalf("%s does not power-cycle", kind)
		}
	}
}
