// Command crashtest runs a power-fault campaign across devices and host
// configurations, auditing the paper's guarantees after every cut: no
// acknowledged commit may be lost and no torn page may survive recovery.
//
// Usage:
//
//	crashtest [-trials N] [-seed N]
//
// Expected output: DuraSSD is safe in every configuration (including
// barriers off + double-write off, the fast one); the volatile-cache SSD-A
// is only safe in the slow barriers-on + double-write-on configuration.
// The volume scenarios extend the claim to arrays: striped and mirrored
// DuraSSD volumes stay safe in the fast configuration, while a mirror of
// volatile-cache drives is NOT safe — the power cut hits both copies at
// the same instant, so redundancy cannot stand in for a durable cache.
package main

import (
	"flag"
	"fmt"
	"log"

	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/stats"
)

func main() {
	log.SetFlags(0)
	trials := flag.Int("trials", 10, "power cuts per configuration")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	tbl := stats.NewTable("Power-fault campaign: acked-commit durability and page atomicity",
		"Config", "Trials", "Acked", "LostCommits", "TornPages", "Verdict")
	wa := stats.NewTable("Per-origin write amplification (summed over trials)",
		"Config", "Origin", "PagesWritten", "NANDSlots", "GCSlots", "WA")
	for _, sc := range []faults.Scenario{
		{Device: faults.DuraSSD, Barrier: false, DoubleWrite: false},
		{Device: faults.DuraSSD, Barrier: true, DoubleWrite: false},
		{Device: faults.DuraSSD, Barrier: true, DoubleWrite: true},
		{Device: faults.SSDA, Barrier: false, DoubleWrite: false},
		{Device: faults.SSDA, Barrier: false, DoubleWrite: true},
		{Device: faults.SSDA, Barrier: true, DoubleWrite: true},
		{Device: faults.DuraSSD, Layout: faults.Striped, Width: 4, Barrier: false, DoubleWrite: false},
		{Device: faults.DuraSSD, Layout: faults.Mirror, Width: 2, Barrier: false, DoubleWrite: false},
		{Device: faults.SSDA, Layout: faults.Mirror, Width: 2, Barrier: false, DoubleWrite: false},
	} {
		var acked, lost, torn int
		var origins [iotrace.NumOrigins]iotrace.OriginCounters
		for i := 0; i < *trials; i++ {
			sc.Seed = *seed + int64(i)
			v, err := faults.Run(sc)
			if err != nil {
				log.Fatalf("%s trial %d: %v", sc.Name(), i, err)
			}
			if v.Err != nil {
				log.Fatalf("%s trial %d audit: %v", sc.Name(), i, v.Err)
			}
			acked += v.AckedCommits
			lost += v.LostCommits
			torn += v.TornPages
			for o := range v.Origins {
				origins[o].PagesWritten += v.Origins[o].PagesWritten
				origins[o].PagesRead += v.Origins[o].PagesRead
				origins[o].NANDSlots += v.Origins[o].NANDSlots
				origins[o].GCSlots += v.Origins[o].GCSlots
			}
		}
		verdict := "SAFE"
		if lost > 0 || torn > 0 {
			verdict = "UNSAFE"
		}
		tbl.AddRow(sc.Name(), *trials, acked, lost, torn, verdict)
		for o := range origins {
			c := &origins[o]
			if c.PagesWritten == 0 && c.NANDSlots == 0 {
				continue
			}
			wa.AddRow(sc.Name(), iotrace.Origin(o).String(),
				c.PagesWritten, c.NANDSlots, c.GCSlots, c.WriteAmplification())
		}
	}
	tbl.AddComment("LostCommits: acknowledged transactions missing after recovery")
	tbl.AddComment("TornPages: pages failing checksum validation with no double-write copy")
	fmt.Println(tbl)
	fmt.Println(wa)
}
