// Command crashtest runs a power-fault campaign across devices and host
// configurations, auditing the paper's guarantees after every cut: no
// acknowledged commit may be lost and no torn page may survive recovery.
//
// Usage:
//
//	crashtest [-trials N] [-seed N]
//	crashtest -explore [-points N] [-updates N] [-seed N]
//
// The default mode cuts power at random instants. With -explore, the
// systematic mode runs instead: for each engine × device × configuration
// cell, a probe run records the device command schedule, crash points are
// derived from it (after every sampled ack, mid program, mid erase, mid
// flush drain, mid capacitor dump), and each point is replayed as its own
// deterministic trial. The schedule digest printed per cell is reproducible
// across runs with the same seed.
//
// Expected output: DuraSSD is safe in every configuration (including
// barriers off + double-write off, the fast one); the volatile-cache SSD-A
// is only safe in the slow barriers-on + double-write-on configuration.
// The volume scenarios extend the claim to arrays: striped and mirrored
// DuraSSD volumes stay safe in the fast configuration, while a mirror of
// volatile-cache drives is NOT safe — the power cut hits both copies at
// the same instant, so redundancy cannot stand in for a durable cache.
// The ReplicaLoss exploration rows extend it to replicated shard groups:
// quorum-acked writes over R=3 DuraSSD replicas survive cutting any single
// replica at every derived instant (plus a second cut mid catch-up), while
// the R=1 volatile control loses acked writes, reported under VolLost.
//
// Failing trials are collected and reported together at the end; any
// failure (or any lost commit / torn page in a configuration expected to
// be safe) makes the process exit non-zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"durassd/internal/crashpoint"
	"durassd/internal/faults"
	"durassd/internal/iotrace"
	"durassd/internal/stats"
)

func main() {
	log.SetFlags(0)
	trials := flag.Int("trials", 10, "power cuts per configuration (random mode)")
	seed := flag.Int64("seed", 1, "base seed")
	explore := flag.Bool("explore", false, "systematic crash-point exploration instead of random cuts")
	points := flag.Int("points", 12, "max crash points per configuration (-explore)")
	updates := flag.Int("updates", 160, "updates per workload (-explore)")
	flag.Parse()

	var failures []string
	if *explore {
		failures = exploreCampaign(*points, *updates, *seed)
	} else {
		failures = randomCampaign(*trials, *seed)
	}
	if len(failures) > 0 {
		log.Printf("%d failing trial(s):", len(failures))
		for _, f := range failures {
			log.Printf("  FAIL %s", f)
		}
		os.Exit(1)
	}
}

// randomCampaign is the classic mode: N random-instant cuts per
// configuration. Returns descriptions of failing trials.
func randomCampaign(trials int, seed int64) []string {
	var failures []string
	tbl := stats.NewTable("Power-fault campaign: acked-commit durability and page atomicity",
		"Config", "Trials", "Acked", "LostCommits", "TornPages", "Verdict")
	wa := stats.NewTable("Per-origin write amplification (summed over trials)",
		"Config", "Origin", "PagesWritten", "NANDSlots", "GCSlots", "WA")
	for _, sc := range []faults.Scenario{
		{Device: faults.DuraSSD, Barrier: false, DoubleWrite: false},
		{Device: faults.DuraSSD, Barrier: true, DoubleWrite: false},
		{Device: faults.DuraSSD, Barrier: true, DoubleWrite: true},
		{Device: faults.SSDA, Barrier: false, DoubleWrite: false},
		{Device: faults.SSDA, Barrier: false, DoubleWrite: true},
		{Device: faults.SSDA, Barrier: true, DoubleWrite: true},
		{Device: faults.DuraSSD, Layout: faults.Striped, Width: 4, Barrier: false, DoubleWrite: false},
		{Device: faults.DuraSSD, Layout: faults.Mirror, Width: 2, Barrier: false, DoubleWrite: false},
		{Device: faults.SSDA, Layout: faults.Mirror, Width: 2, Barrier: false, DoubleWrite: false},
	} {
		var acked, lost, torn int
		var origins [iotrace.NumOrigins]iotrace.OriginCounters
		for i := 0; i < trials; i++ {
			sc.Seed = seed + int64(i)
			v, err := faults.Run(sc)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s trial %d: %v", sc.Name(), i, err))
				continue
			}
			if v.Err != nil {
				failures = append(failures, fmt.Sprintf("%s trial %d audit: %v", sc.Name(), i, v.Err))
				continue
			}
			acked += v.AckedCommits
			lost += v.LostCommits
			torn += v.TornPages
			for o := range v.Origins {
				origins[o].PagesWritten += v.Origins[o].PagesWritten
				origins[o].PagesRead += v.Origins[o].PagesRead
				origins[o].NANDSlots += v.Origins[o].NANDSlots
				origins[o].GCSlots += v.Origins[o].GCSlots
			}
		}
		verdict := "SAFE"
		if lost > 0 || torn > 0 {
			verdict = "UNSAFE"
		}
		tbl.AddRow(sc.Name(), trials, acked, lost, torn, verdict)
		for o := range origins {
			c := &origins[o]
			if c.PagesWritten == 0 && c.NANDSlots == 0 {
				continue
			}
			wa.AddRow(sc.Name(), iotrace.Origin(o).String(),
				c.PagesWritten, c.NANDSlots, c.GCSlots, c.WriteAmplification())
		}
	}
	tbl.AddComment("LostCommits: acknowledged transactions missing after recovery")
	tbl.AddComment("TornPages: pages failing checksum validation with no double-write copy")
	fmt.Println(tbl)
	fmt.Println(wa)
	return failures
}

// exploreCampaign runs the systematic crash-point matrix: both engines,
// both devices, fast and safe host configurations. Returns descriptions of
// failing explorations.
func exploreCampaign(points, updates int, seed int64) []string {
	var failures []string
	tbl := stats.NewTable("Systematic crash-point exploration (engine × device × config)",
		"Config", "Points", "AfterAck", "MidProg", "MidDump", "MidMigr", "MidCatch", "Lost", "Torn", "VolLost", "Unsafe", "Digest")
	for _, c := range crashpoint.Matrix(points, updates, seed) {
		res, err := crashpoint.Explore(c)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", c.Name(), err))
			continue
		}
		counts := res.KindCounts()
		tbl.AddRow(c.Name(), len(res.Points),
			counts[crashpoint.AfterAck], counts[crashpoint.MidProgram], counts[crashpoint.MidDump],
			counts[crashpoint.MidMigration], counts[crashpoint.MidCatchup],
			res.Lost, res.Torn, res.VolatileLost, res.Unsafe, res.Digest[:12])
		for _, o := range res.Outcomes {
			if o.Verdict.Err != nil {
				failures = append(failures, fmt.Sprintf("%s %s at %v: %v",
					c.Name(), o.Point.Kind, o.Point.At, o.Verdict.Err))
			}
		}
	}
	tbl.AddComment("Each point is one deterministic replay with the cut pinned to that instant")
	tbl.AddComment("Digest: SHA-256 prefix of the canonical schedule (same seed => same digest)")
	tbl.AddComment("VolLost: expected losses on volatile-cache members (MidBurst shards, ReplicaLoss R=1 control)")
	tbl.AddComment("ReplicaLoss rows cut one replica per point (victim rotating), MidCatch adds a second cut mid catch-up")
	fmt.Println(tbl)
	return failures
}
