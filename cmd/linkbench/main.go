// Command linkbench regenerates the paper's MySQL/LinkBench experiments:
// Figure 5 (TPS under barrier × double-write configurations), Figure 6
// (buffer miss ratio and TPS vs pool size) and Table 3 (per-operation
// latency distributions).
//
// Usage:
//
//	linkbench [-figure 5|6] [-table 3] [-all] [-scale N] [-requests N] [-json path]
package main

import (
	"flag"
	"fmt"
	"log"

	"durassd/internal/repro"
)

func main() {
	log.SetFlags(0)
	figure := flag.Int("figure", 0, "figure to reproduce: 5 or 6")
	table := flag.Int("table", 0, "table to reproduce: 3")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int("scale", 256, "divide paper-scale DB and buffer sizes")
	requests := flag.Int("requests", 0, "measured requests per run (0 = default)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	flag.Parse()

	rep := repro.NewJSONReport("linkbench")
	rep.SetConfig("scale", *scale)
	rep.SetConfig("requests", *requests)
	rep.SetConfig("seed", *seed)

	cfg := repro.LinkBenchConfig{Scale: *scale, Requests: *requests, Seed: *seed}
	if *all || *figure == 5 {
		res, err := repro.Fig5(cfg)
		if err != nil {
			log.Fatalf("figure 5: %v", err)
		}
		fmt.Println(res.Table)
		fmt.Println(res.Origins)
		rep.AddTable(res.Table)
		rep.AddTable(res.Origins)
		for _, config := range repro.SortedKeys(res.TPS) {
			cells := res.TPS[config]
			for _, page := range repro.SortedKeys(cells) {
				rep.AddMetric(fmt.Sprintf("fig5/%s/page=%d", config, page), cells[page])
			}
		}
	}
	if *all || *figure == 6 {
		res, err := repro.Fig6(cfg)
		if err != nil {
			log.Fatalf("figure 6: %v", err)
		}
		fmt.Println(res.MissTable)
		fmt.Println(res.TPSTable)
		rep.AddTable(res.MissTable)
		rep.AddTable(res.TPSTable)
	}
	if *all || *table == 3 {
		res, err := repro.Table3(cfg)
		if err != nil {
			log.Fatalf("table 3: %v", err)
		}
		fmt.Println(res.Table)
		rep.AddTable(res.Table)
	}
	if !*all && *figure == 0 && *table == 0 {
		log.Fatal("nothing to do: pass -figure 5, -figure 6, -table 3 or -all")
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}
