// Command durabench regenerates the paper's device-level microbenchmarks:
// Table 1 (fsync frequency vs 4 KB random-write IOPS across four devices)
// and Table 2 (page-size effect on IOPS for DuraSSD and the disk).
//
// Usage:
//
//	durabench [-table 1|2|0] [-scale N] [-ops N] [-seed N] [-json path]
//	          [-cpuprofile path] [-memprofile path]
//
// -table 0 (default) runs both. Larger -scale shrinks device capacity and
// speeds the run; -ops sets operations per table cell. -volume sweeps
// multi-device volume geometries (striped / mirrored arrays) and reports
// the scaling each device's cache discipline allows. -media sweeps NAND
// retention error rates with scrubbing on/off and counts uncorrectable host
// reads. -json writes the results as a machine-readable report ("-" for
// stdout).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"durassd/internal/repro"
)

func main() {
	log.SetFlags(0)
	table := flag.Int("table", 0, "which table to run: 1, 2, or 0 for both")
	scale := flag.Int("scale", 16, "device capacity divisor (1 = full ~4GiB sim flash)")
	ops := flag.Int("ops", 0, "operations per table cell (0 = default)")
	seed := flag.Int64("seed", 1, "workload seed")
	endurance := flag.Bool("endurance", false, "also measure NAND bytes per transaction (paper's >50% reduction claim)")
	tail := flag.Bool("tail", false, "also measure read-latency percentiles under mixed load with and without barriers")
	breakdown := flag.Bool("breakdown", false, "trace requests and print the per-layer latency breakdown and per-origin traffic")
	volume := flag.Bool("volume", false, "sweep striped/mirrored volume geometries (4KB random-write IOPS vs single drive)")
	media := flag.Bool("media", false, "sweep retention error rates × scrubbing and count uncorrectable host reads")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}()

	rep := repro.NewJSONReport("durabench")
	rep.SetConfig("scale", *scale)
	rep.SetConfig("ops", *ops)
	rep.SetConfig("seed", *seed)

	if *table == 0 || *table == 1 {
		res, err := repro.Table1(repro.Table1Config{Scale: *scale, OpsPerCell: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
		rep.AddTable(res.Table)
		for _, row := range repro.SortedKeys(res.IOPS) {
			cells := res.IOPS[row]
			for _, every := range repro.SortedKeys(cells) {
				rep.AddMetric(fmt.Sprintf("table1/%s/fsync=%d", row, every), cells[every])
			}
		}
	}
	if *table == 0 || *table == 2 {
		res, err := repro.Table2(repro.Table2Config{Scale: *scale, OpsPerCell: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("table 2: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.DuraSSD)
		fmt.Fprintln(os.Stdout, res.HDD)
		rep.AddTable(res.DuraSSD)
		rep.AddTable(res.HDD)
		for _, row := range repro.SortedKeys(res.IOPS) {
			cells := res.IOPS[row]
			for _, page := range repro.SortedKeys(cells) {
				rep.AddMetric(fmt.Sprintf("table2/%s/page=%d", row, page), cells[page])
			}
		}
	}
	if *endurance {
		res, err := repro.Endurance(repro.LinkBenchConfig{Scale: 512, Seed: *seed})
		if err != nil {
			log.Fatalf("endurance: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
		rep.AddTable(res.Table)
		rep.AddMetricMap("endurance/flash-bytes-per-tx", res.FlashBytesPerTx)
		rep.AddMetric("endurance/reduction", res.Reduction)
	}
	if *breakdown {
		res, err := repro.Breakdown(repro.BreakdownConfig{Scale: *scale, Ops: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("breakdown: %v", err)
		}
		for _, t := range res.Tables {
			fmt.Fprintln(os.Stdout, t)
			rep.AddTable(t)
		}
	}
	if *tail {
		res, err := repro.TailLatency(repro.TailLatencyConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("tail latency: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
		rep.AddTable(res.Table)
	}
	if *volume {
		res, err := repro.VolumeSweep(repro.VolumeSweepConfig{Scale: *scale, OpsPerCell: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("volume sweep: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
		rep.AddTable(res.Table)
		rep.AddMetricMap("volume", res.IOPS)
	}
	if *media {
		res, err := repro.MediaSweep(repro.MediaSweepConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("media sweep: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
		rep.AddTable(res.Table)
		rep.AddMetricMap("media/uncorrectable", res.Uncorrectable)
		rep.AddMetricMap("media/refreshes", res.Refreshes)
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}
