// Command durabench regenerates the paper's device-level microbenchmarks:
// Table 1 (fsync frequency vs 4 KB random-write IOPS across four devices)
// and Table 2 (page-size effect on IOPS for DuraSSD and the disk).
//
// Usage:
//
//	durabench [-table 1|2|0] [-scale N] [-ops N] [-seed N]
//
// -table 0 (default) runs both. Larger -scale shrinks device capacity and
// speeds the run; -ops sets operations per table cell.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"durassd/internal/repro"
)

func main() {
	log.SetFlags(0)
	table := flag.Int("table", 0, "which table to run: 1, 2, or 0 for both")
	scale := flag.Int("scale", 16, "device capacity divisor (1 = full ~4GiB sim flash)")
	ops := flag.Int("ops", 0, "operations per table cell (0 = default)")
	seed := flag.Int64("seed", 1, "workload seed")
	endurance := flag.Bool("endurance", false, "also measure NAND bytes per transaction (paper's >50% reduction claim)")
	tail := flag.Bool("tail", false, "also measure read-latency percentiles under mixed load with and without barriers")
	breakdown := flag.Bool("breakdown", false, "trace requests and print the per-layer latency breakdown and per-origin traffic")
	flag.Parse()

	if *table == 0 || *table == 1 {
		res, err := repro.Table1(repro.Table1Config{Scale: *scale, OpsPerCell: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
	}
	if *table == 0 || *table == 2 {
		res, err := repro.Table2(repro.Table2Config{Scale: *scale, OpsPerCell: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("table 2: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.DuraSSD)
		fmt.Fprintln(os.Stdout, res.HDD)
	}
	if *endurance {
		res, err := repro.Endurance(repro.LinkBenchConfig{Scale: 512, Seed: *seed})
		if err != nil {
			log.Fatalf("endurance: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
	}
	if *breakdown {
		res, err := repro.Breakdown(repro.BreakdownConfig{Scale: *scale, Ops: *ops, Seed: *seed})
		if err != nil {
			log.Fatalf("breakdown: %v", err)
		}
		for _, t := range res.Tables {
			fmt.Fprintln(os.Stdout, t)
		}
	}
	if *tail {
		res, err := repro.TailLatency(repro.TailLatencyConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("tail latency: %v", err)
		}
		fmt.Fprintln(os.Stdout, res.Table)
	}
}
