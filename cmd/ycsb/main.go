// Command ycsb regenerates the paper's Table 5: throughput of a
// Couchbase-style append-only document store under YCSB workload-A (and a
// 100%-update variant) on DuraSSD, sweeping the fsync batch size with
// write barriers on and off.
//
// Usage:
//
//	ycsb [-ops N] [-docs N] [-seed N] [-json path]
package main

import (
	"flag"
	"fmt"
	"log"

	"durassd/internal/repro"
)

func main() {
	log.SetFlags(0)
	ops := flag.Int("ops", 0, "operations per cell (0 = default 100k; paper used 200k)")
	docs := flag.Int64("docs", 0, "documents in the bucket (0 = default 2M)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	flag.Parse()

	res, err := repro.Table5(repro.YCSBConfig{Operations: *ops, Docs: *docs, Seed: *seed})
	if err != nil {
		log.Fatalf("table 5: %v", err)
	}
	fmt.Println(res.On)
	fmt.Println(res.Off)

	if *jsonPath != "" {
		rep := repro.NewJSONReport("ycsb")
		rep.SetConfig("ops", *ops)
		rep.SetConfig("docs", *docs)
		rep.SetConfig("seed", *seed)
		rep.AddTable(res.On)
		rep.AddTable(res.Off)
		for _, barrier := range repro.SortedKeys(res.OPS) {
			workloads := res.OPS[barrier]
			for _, workload := range repro.SortedKeys(workloads) {
				cells := workloads[workload]
				for _, batch := range repro.SortedKeys(cells) {
					rep.AddMetric(fmt.Sprintf("table5/barrier=%s/%s/batch=%d", barrier, workload, batch), cells[batch])
				}
			}
		}
		if err := rep.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}
