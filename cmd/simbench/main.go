// Command simbench measures the simulator's raw wall-clock speed on fixed
// seeded scenarios and emits the shared -json result schema. The committed
// BENCH_<n>.json files at the repo root record the trajectory PR by PR;
// -check compares a fresh run against one and fails on a >2x ns/event
// regression (the CI smoke gate).
//
// Usage:
//
//	go run ./cmd/simbench                          # run all scenarios, print a table
//	go run ./cmd/simbench -json BENCH_7.json       # also write the report
//	go run ./cmd/simbench -check BENCH_6.json      # regression gate vs a committed baseline
//	go run ./cmd/simbench -scenario fio-randwrite-durassd -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"durassd/internal/simbench"
)

func main() {
	scenario := flag.String("scenario", "", "run only this scenario (default: all)")
	repeat := flag.Int("repeat", 3, "repetitions per scenario; the fastest run is reported")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	checkPath := flag.String("check", "", "compare against a committed BENCH_*.json and fail on regression")
	checkFactor := flag.Float64("check-factor", 2.0, "ns/event regression factor that fails -check")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	shardsweep := flag.Bool("shardsweep", false, "measure the shards scenario at 1/2/4/8 workers and print the scaling table")
	flag.Parse()

	if *shardsweep {
		rows, err := simbench.ShardSweep([]int{1, 2, 4, 8}, *repeat)
		if err != nil {
			fatal(err)
		}
		base := rows[0].Result.EventsPerSec()
		fmt.Printf("shards scaling on %d CPUs (virtual-time schedule identical in every row):\n", runtime.NumCPU())
		if runtime.NumCPU() == 1 {
			fmt.Println("  single-core host: the ratios below measure thread overhead, not parallel speedup")
		}
		for _, row := range rows {
			r := row.Result
			fmt.Printf("  workers=%d  %9d events  %10.0f events/sec  %7.1f ns/event  %.2fx\n",
				row.Workers, r.Events, r.EventsPerSec(), r.NsPerEvent(), r.EventsPerSec()/base)
		}
		if *jsonPath != "" {
			if err := simbench.SweepReport(rows, *repeat).WriteFile(*jsonPath); err != nil {
				fatal(err)
			}
		}
		return
	}

	scenarios := simbench.Scenarios()
	if *scenario != "" {
		s, err := simbench.Find(*scenario)
		if err != nil {
			fatal(err)
		}
		scenarios = []simbench.Scenario{s}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var results []simbench.Result
	for _, s := range scenarios {
		r, err := simbench.MeasureBest(s, *repeat)
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
		fmt.Printf("%-24s %9d events  %10.0f events/sec  %7.1f ns/event  %6.2f allocs/event  (%v)\n",
			r.Name, r.Events, r.EventsPerSec(), r.NsPerEvent(), r.AllocsPerEvent(), r.Wall.Round(100_000))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}

	if *jsonPath != "" {
		rep := simbench.Report(results, *repeat)
		if err := rep.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
	}

	if *checkPath != "" {
		raw, err := os.ReadFile(*checkPath)
		if err != nil {
			fatal(err)
		}
		var base simbench.JSONBaseline
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("simbench: parsing baseline %s: %w", *checkPath, err))
		}
		if base.Schema == 0 || base.Tool != "simbench" || len(base.Metrics) == 0 {
			fatal(fmt.Errorf("simbench: baseline %s has unexpected shape (tool=%q, %d metrics)",
				*checkPath, base.Tool, len(base.Metrics)))
		}
		if err := simbench.CheckRegression(results, &base, *checkFactor); err != nil {
			fatal(err)
		}
		fmt.Printf("ok: within %.1fx of %s\n", *checkFactor, *checkPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
