// Command simlint mechanically enforces the repository's determinism and
// crash-safety invariants with a suite of custom static analyzers:
//
//	crossdomain     no state shared with or retained by another sim.Domain
//	                outside Send/Call message values
//	devcheck        no discarded storage.Device / PowerCycler errors
//	directiveaudit  no stale //simlint:allow directives
//	hotalloc        no heap allocation reachable from //simlint:hotpath
//	                functions
//	maporder        no map-iteration order leaking into digests or reports
//	nowalltime      no wall-clock time in sim-driven packages
//	procbudget      event-handler budgets respected
//	seededrand      no global math/rand; randomness flows from the run seed
//	simproc         no raw goroutines outside internal/sim
//
// Usage:
//
//	go run ./cmd/simlint [flags] [packages]
//
// Packages default to ./.... Exit status is 0 when the tree is clean, 1
// when findings are reported, 2 on an internal error. Audited exceptions
// use a directive with a mandatory reason, either trailing the offending
// line or on the line above it:
//
//	//simlint:allow nowalltime progress meter shows real elapsed time
//
// -fix applies the mechanical rewrites (routing global math/rand calls
// through the unique *rand.Rand already in scope; deleting stale allow
// directives). -json emits machine-readable diagnostics for CI artifacts.
//
// Packages are analyzed in parallel (dependency order, -workers bounds the
// fan-out) and results are cached on disk keyed on the simlint binary, Go
// version, analyzer set, source hashes and dependency export data — edit
// any input and the affected packages re-analyze, touch nothing and the
// run is instant. The cache lives under os.UserCacheDir()/durassd-simlint
// (override with $SIMLINT_CACHE or -cachedir; bypass with -nocache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"durassd/internal/analysis"
	"durassd/internal/analysis/all"
	"durassd/internal/analysis/driver"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Package  string `json:"package"`
}

func run() int {
	fix := flag.Bool("fix", false, "apply suggested fixes instead of reporting them")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	notests := flag.Bool("notests", false, "skip _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cachedir := flag.String("cachedir", "", "result cache directory (default: $SIMLINT_CACHE or the user cache dir)")
	workers := flag.Int("workers", 0, "max packages analyzed in parallel (default: GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all.Analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := driver.Analyze(driver.Options{
		Patterns:  patterns,
		Analyzers: analyzers,
		Tests:     !*notests,
		Fix:       *fix,
		NoCache:   *nocache,
		CacheDir:  *cachedir,
		Workers:   *workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(res.Findings))
		for _, f := range res.Findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Position.Filename,
				Line:     f.Position.Line,
				Col:      f.Position.Column,
				Message:  f.Message,
				Package:  f.Package,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}
	if res.Fixed > 0 {
		fmt.Fprintf(os.Stderr, "simlint: applied %d fixes\n", res.Fixed)
	}
	fmt.Fprintf(os.Stderr, "simlint: %d packages analyzed (%d from cache)\n", res.Packages, res.CacheHits)
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d findings\n", len(res.Findings))
		return 1
	}
	return 0
}
