// Command simlint mechanically enforces the repository's determinism and
// crash-safety invariants with a suite of custom static analyzers:
//
//	nowalltime  no wall-clock time in sim-driven packages
//	seededrand  no global math/rand; randomness flows from the run seed
//	simproc     no raw goroutines outside internal/sim
//	maporder    no map-iteration order leaking into digests or reports
//	devcheck    no discarded storage.Device / PowerCycler errors
//
// Usage:
//
//	go run ./cmd/simlint [-fix] [-only a,b] [-notests] [packages]
//
// Packages default to ./.... Exit status is 0 when the tree is clean, 1
// when findings are reported, 2 on an internal error. Audited exceptions
// use a directive with a mandatory reason, either trailing the offending
// line or on the line above it:
//
//	//simlint:allow nowalltime progress meter shows real elapsed time
//
// -fix applies the mechanical rewrites (currently: routing global
// math/rand calls through the unique *rand.Rand already in scope).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"durassd/internal/analysis"
	"durassd/internal/analysis/all"
	"durassd/internal/analysis/driver"
)

func main() {
	os.Exit(run())
}

func run() int {
	fix := flag.Bool("fix", false, "apply suggested fixes instead of reporting them")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	notests := flag.Bool("notests", false, "skip _test.go files")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all.Analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := driver.NewLoader("", !*notests)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	res, err := driver.Run(pkgs, analyzers, *fix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if res.Fixed > 0 {
		fmt.Fprintf(os.Stderr, "simlint: applied %d fixes\n", res.Fixed)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d findings\n", len(res.Findings))
		return 1
	}
	return 0
}
