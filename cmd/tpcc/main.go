// Command tpcc regenerates the paper's Table 4: TPC-C throughput (tpmC) on
// a commercial-style database engine (O_DSYNC data writes, no double-write
// buffer, 2 GB-scaled buffer pool) with write barriers on versus off,
// across 16/8/4 KB page sizes.
//
// Usage:
//
//	tpcc [-scale N] [-requests N] [-seed N] [-json path]
package main

import (
	"flag"
	"fmt"
	"log"

	"durassd/internal/repro"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 256, "divide paper-scale warehouse count and buffer size")
	requests := flag.Int("requests", 0, "measured transactions per cell (0 = default)")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	flag.Parse()

	res, err := repro.Table4(repro.TPCCConfig{Scale: *scale, Requests: *requests, Seed: *seed})
	if err != nil {
		log.Fatalf("table 4: %v", err)
	}
	fmt.Println(res.Table)

	if *jsonPath != "" {
		rep := repro.NewJSONReport("tpcc")
		rep.SetConfig("scale", *scale)
		rep.SetConfig("requests", *requests)
		rep.SetConfig("seed", *seed)
		rep.AddTable(res.Table)
		for _, barrier := range repro.SortedKeys(res.TpmC) {
			cells := res.TpmC[barrier]
			for _, page := range repro.SortedKeys(cells) {
				rep.AddMetric(fmt.Sprintf("table4/barrier=%s/page=%d", barrier, page), cells[page])
			}
		}
		if err := rep.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}
