// Command servebench drives the mixed-tenant serving scenario — YCSB-A,
// LinkBench, and TPC-C tenants sharing one sharded serving box over DuraSSD
// shards — and reports per-tenant throughput, tail latency, shed and
// throttle counts. It emits the shared -json result schema.
//
// Usage:
//
//	go run ./cmd/servebench                       # default 4-shard mix, print the table
//	go run ./cmd/servebench -shards 8 -workers 4  # scale the box
//	go run ./cmd/servebench -json report.json     # also write the JSON report
//	go run ./cmd/servebench -verify               # re-run at 1 vs N workers, require identical digests
//	go run ./cmd/servebench -chaos                # replicated R=3 groups under the seeded fault schedule
//
// With -chaos the box becomes two R=3 W=2 replica groups and the canonical
// fault schedule is injected: a replica brownout (hedged reads), a replica
// power failure with a mid-traffic reboot and delta catch-up (breaker,
// quorum degradation), and an overload burst (shedding, client retries).
// The report gains the robustness counter line; -shards is ignored.
//
// The run is deterministic: the same seed produces a byte-identical report
// and iotrace digest at any worker count, which -verify checks end to end —
// fault injection included.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"durassd/internal/repro"
	"durassd/internal/serve"
)

func main() {
	log.SetFlags(0)
	shards := flag.Int("shards", 4, "engine shards (one store per sim domain)")
	workers := flag.Int("workers", 1, "cluster worker threads")
	seed := flag.Int64("seed", 1, "scenario seed")
	jsonPath := flag.String("json", "", "write results as a JSON report to this path (\"-\" = stdout)")
	verify := flag.Bool("verify", false, "run at 1 worker and again at -workers; fail unless reports and digests are byte-identical")
	chaos := flag.Bool("chaos", false, "replicated R=3 W=2 groups under the seeded brownout/crash/overload schedule (-shards ignored)")
	flag.Parse()

	cfg := serve.ScenarioConfig{Shards: *shards, Workers: *workers, Seed: *seed}
	if *chaos {
		cfg = serve.ChaosScenario(*workers, *seed)
	}
	res, err := serve.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	if *verify {
		vcfg := cfg
		vcfg.Workers = 1
		base, err := serve.RunScenario(vcfg)
		if err != nil {
			log.Fatal(err)
		}
		if base.Digest != res.Digest {
			log.Fatalf("digest mismatch: workers=1 %s vs workers=%d %s",
				base.Digest, *workers, res.Digest)
		}
		if base.Render() != res.Render() {
			log.Fatalf("report mismatch between workers=1 and workers=%d", *workers)
		}
		fmt.Printf("verify: workers=1 and workers=%d byte-identical (digest %s)\n",
			*workers, res.Digest[:16])
	}

	if *jsonPath != "" {
		rep := repro.NewJSONReport("servebench")
		rep.SetConfig("shards", cfg.Shards)
		rep.SetConfig("workers", *workers)
		rep.SetConfig("seed", *seed)
		if *chaos {
			rep.SetConfig("chaos", true)
			rep.SetConfig("replicas", cfg.Replicas)
		}
		addToJSON(rep, res)
		if err := rep.WriteFile(*jsonPath); err != nil {
			log.Fatal(err)
		}
	}
}

// addToJSON folds the result into the shared -json report schema: the
// rendered table plus flat metrics — per-tenant p99s, shed and throttle
// counts keyed for trajectory tooling.
func addToJSON(rep *repro.JSONReport, r *serve.ScenarioResult) {
	rep.AddTable(r.Table())
	for _, t := range r.Tenants {
		prefix := "tenant/" + t.Name
		rep.AddMetric(prefix+"/ops", float64(t.Ops))
		rep.AddMetric(prefix+"/shed", float64(t.Shed))
		rep.AddMetric(prefix+"/throttled", float64(t.Throttled))
		rep.AddMetric(prefix+"/cache_hits", float64(t.CacheHits))
		rep.AddMetric(prefix+"/bloom_skips", float64(t.BloomSkips))
		rep.AddMetric(prefix+"/read_p99_us", float64(t.ReadP99)/float64(time.Microsecond))
		rep.AddMetric(prefix+"/write_p99_us", float64(t.WriteP99)/float64(time.Microsecond))
	}
	for i, n := range r.ShedByShard {
		rep.AddMetric(fmt.Sprintf("shard/%d/shed", i), float64(n))
	}
	rb := r.Robust
	rep.AddMetric("robust/hedges", float64(rb.Hedges))
	rep.AddMetric("robust/deadlines", float64(rb.Deadlines))
	rep.AddMetric("robust/retries", float64(rb.Retries))
	rep.AddMetric("robust/breaker_opens", float64(rb.BreakerOpens))
	rep.AddMetric("robust/unavailable", float64(rb.Unavailable))
	rep.AddMetric("robust/catchup_keys", float64(rb.CatchupKeys))
	rep.AddMetric("robust/stale_reads", float64(rb.StaleReads))
	rep.AddMetric("cache/hit_ratio", r.CacheRatio)
	rep.AddMetric("cluster/events", float64(r.Events))
	rep.AddMetric("cluster/virtual_ms", float64(r.Elapsed)/float64(time.Millisecond))
}
